package run_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	"resilientloc/internal/engine/params"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
)

// gridSpec is the planner tests' workhorse: a tiny parameterized grid whose
// trials are cheap enough to run by the thousand, so the 1024→4096
// acceptance geometry is exercised at its real size.
func gridSpec(seed int64, trials int) spec.JobSpec {
	return spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-grid", Seed: seed, Trials: trials,
		Params: params.Map{"rows": params.Num(3), "cols": params.Num(4)}}
}

// TestPlannerExtendsCachedPrefix is the tentpole acceptance check: after a
// 1024-trial run is cached, requesting 4096 trials of the same spec
// computes exactly the 3072 uncovered trials, reports the 1024 reused ones,
// and returns bytes identical to a cold 4096-trial run with the planner
// disabled — at seeds 1 and 5.
func TestPlannerExtendsCachedPrefix(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		dir := filepath.Join(t.TempDir(), "cache")
		s := newSession(t, run.Options{CacheDir: dir})

		if _, info, err := run.ExecuteSpec(s, gridSpec(seed, 1024)); err != nil || info.Cached {
			t.Fatalf("seed %d: prime run: cached=%v err=%v", seed, info.Cached, err)
		}
		if got := s.TrialsExecuted(); got != 1024 {
			t.Fatalf("seed %d: prime run executed %d trials, want 1024", seed, got)
		}

		res, info, err := run.ExecuteSpec(s, gridSpec(seed, 4096))
		if err != nil {
			t.Fatal(err)
		}
		if got := s.TrialsExecuted() - 1024; got != 3072 {
			t.Errorf("seed %d: extension executed %d trials, want exactly 3072", seed, got)
		}
		if info.ReusedTrials != 1024 {
			t.Errorf("seed %d: info reports %d reused trials, want 1024", seed, info.ReusedTrials)
		}
		if info.Cached {
			t.Errorf("seed %d: partially reused run claims to be fully cached", seed)
		}

		cold := newSession(t, run.Options{CacheDir: filepath.Join(t.TempDir(), "cold"), NoReuse: true})
		want, coldInfo, err := run.ExecuteSpec(cold, gridSpec(seed, 4096))
		if err != nil {
			t.Fatal(err)
		}
		if coldInfo.ReusedTrials != 0 {
			t.Errorf("seed %d: NoReuse session reused %d trials", seed, coldInfo.ReusedTrials)
		}
		res.ClearExecutionMeta()
		want.ClearExecutionMeta()
		if !jsonEqual(t, res.Report, want.Report) {
			t.Errorf("seed %d: extended run diverged from cold run", seed)
		}
	}
}

// TestPlannerFullCoverageComputesNothing: when cached range entries tile the
// whole request — here the two halves banked by a coordinator-style split —
// the planner merges them without executing a single trial and reports the
// run as cached.
func TestPlannerFullCoverageComputesNothing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	prime := newSession(t, run.Options{CacheDir: dir})
	base := gridSpec(3, 64)
	for _, rg := range [][2]int{{0, 32}, {32, 64}} {
		if _, _, err := run.ExecuteSpec(prime, rangeSpec(base, rg[0], rg[1])); err != nil {
			t.Fatal(err)
		}
	}

	s := newSession(t, run.Options{CacheDir: dir})
	res, info, err := run.ExecuteSpec(s, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TrialsExecuted(); got != 0 {
		t.Errorf("fully covered run executed %d trials, want 0", got)
	}
	if !info.Cached || info.ReusedTrials != 64 {
		t.Errorf("info = %+v, want Cached with 64 reused trials", info)
	}

	cold := newSession(t, run.Options{NoCache: true})
	want, _, err := run.ExecuteSpec(cold, base)
	if err != nil {
		t.Fatal(err)
	}
	res.ClearExecutionMeta()
	want.ClearExecutionMeta()
	if !jsonEqual(t, res.Report, want.Report) {
		t.Error("range-assembled run diverged from direct run")
	}
}

// TestPlannerNoReuseForcesColdRuns: Options.NoReuse ignores surviving range
// entries entirely — the A/B baseline the byte-identity tests compare
// against must really be cold.
func TestPlannerNoReuseForcesColdRuns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	prime := newSession(t, run.Options{CacheDir: dir})
	if _, _, err := run.ExecuteSpec(prime, gridSpec(2, 64)); err != nil {
		t.Fatal(err)
	}

	s := newSession(t, run.Options{CacheDir: dir, NoReuse: true})
	_, info, err := run.ExecuteSpec(s, gridSpec(2, 128))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TrialsExecuted(); got != 128 || info.ReusedTrials != 0 {
		t.Errorf("NoReuse run executed %d trials (reused %d), want all 128 cold", got, info.ReusedTrials)
	}
}

// TestPlannerPropertyRandomSubsets is the planner's correctness property:
// over random surviving cache states — shard-aligned ranges banked under
// the requested trial count and under smaller ones, in any mix — the full
// request always returns bytes identical to a cold run, and the trials it
// executes plus the trials it reuses account for the trial space exactly
// (no trial both computed and reused, none counted twice).
func TestPlannerPropertyRandomSubsets(t *testing.T) {
	const (
		trials    = 96
		shardSize = 8
		seed      = int64(9)
	)
	cold := newSession(t, run.Options{NoCache: true})
	want, _, err := run.ExecuteSpec(cold, gridSpec(seed, trials))
	if err != nil {
		t.Fatal(err)
	}
	want.ClearExecutionMeta()

	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 10; iter++ {
		dir := filepath.Join(t.TempDir(), "cache")
		prime := newSession(t, run.Options{CacheDir: dir})

		// Bank 0..4 random shard-aligned ranges, each under a random full
		// trial count from {trials, trials/2, trials/4} — entries a crashed
		// coordinator or a smaller prior run would have left behind. Ranges
		// may overlap or duplicate across counts; the planner must cope.
		nRanges := rng.Intn(5)
		var banked [][3]int // lo, hi, under
		for i := 0; i < nRanges; i++ {
			under := trials >> uint(rng.Intn(3))
			nShards := under / shardSize
			a, b := rng.Intn(nShards+1), rng.Intn(nShards+1)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			lo, hi := a*shardSize, b*shardSize
			if _, _, err := run.ExecuteSpec(prime, rangeSpec(gridSpec(seed, under), lo, hi)); err != nil {
				t.Fatalf("iter %d: prime range [%d,%d) under %d: %v", iter, lo, hi, under, err)
			}
			banked = append(banked, [3]int{lo, hi, under})
		}

		s := newSession(t, run.Options{CacheDir: dir})
		res, info, err := run.ExecuteSpec(s, gridSpec(seed, trials))
		if err != nil {
			t.Fatalf("iter %d (banked %v): %v", iter, banked, err)
		}
		if got := s.TrialsExecuted(); got+info.ReusedTrials != trials {
			t.Errorf("iter %d (banked %v): executed %d + reused %d != %d trials",
				iter, banked, got, info.ReusedTrials, trials)
		}
		// An entry starting at trial 0 guarantees the planner reuses
		// something: there is always a candidate at the initial cursor.
		for _, b := range banked {
			if b[0] == 0 && info.ReusedTrials == 0 {
				t.Errorf("iter %d (banked %v): prefix entry available but nothing reused", iter, banked)
				break
			}
		}
		res.ClearExecutionMeta()
		if !jsonEqual(t, res.Report, want.Report) {
			t.Errorf("iter %d (banked %v): planned run diverged from cold run", iter, banked)
		}
	}
}

// TestPlannerSkipsRetainedCampaigns: specs with per-trial retention stay on
// the classic execution path — their cache entries carry trial values the
// planner does not handle — and still produce correct, uncached-then-cached
// behavior. KeepTrialValues specs are only cacheable as ranges, so this
// pins the gate rather than planner output.
func TestPlannerSkipsRetainedCampaigns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s := newSession(t, run.Options{CacheDir: dir})
	sp := gridSpec(4, 16)
	sp.KeepTrialValues = true
	if _, info, err := run.ExecuteSpec(s, sp); err != nil || info.ReusedTrials != 0 {
		t.Fatalf("retained run: reused=%d err=%v, want classic path", info.ReusedTrials, err)
	}
	if got := s.TrialsExecuted(); got != 16 {
		t.Errorf("retained run executed %d trials, want 16", got)
	}
}
