package run_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/experiments"
)

// fastFigs is a small cross-section of the figure suite: two single-trial
// figures and the 36-trial maxrange sweep; together with the library
// scenario below they cover every campaign shape the unified runner serves.
var fastFigs = []string{"fig11", "fig20", "maxrange"}

func newSession(t *testing.T, dir string) *run.Session {
	t.Helper()
	s, err := run.NewSession(run.Options{Seed: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCachedSuiteRunComputesNothing is the acceptance check for the result
// cache: a second suite run over the same (scenario, seed, trials, shard
// size, binary) performs zero trial computation and returns byte-identical
// figure output.
func TestCachedSuiteRunComputesNothing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")

	first := newSession(t, dir)
	firstOut := map[string]string{}
	for _, id := range fastFigs {
		e, ok := experiments.Find(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		res, info, err := run.Execute(first, e.Campaign)
		if err != nil {
			t.Fatal(err)
		}
		if info.Cached {
			t.Fatalf("%s: first run claims to be cached", id)
		}
		firstOut[id] = res.Render()
	}
	sc, _ := engine.Find("multilat-town")
	if _, info, err := run.ExecuteScenario(first, sc); err != nil || info.Cached {
		t.Fatalf("scenario first run: cached=%v err=%v", info.Cached, err)
	}
	if first.TrialsExecuted() == 0 {
		t.Fatal("first session executed no trials")
	}

	second := newSession(t, dir)
	for _, id := range fastFigs {
		e, _ := experiments.Find(id)
		res, info, err := run.Execute(second, e.Campaign)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Cached {
			t.Errorf("%s: second run missed the cache", id)
		}
		if res.Render() != firstOut[id] {
			t.Errorf("%s: cached bytes differ\n--- first ---\n%s--- second ---\n%s", id, firstOut[id], res.Render())
		}
	}
	rep, info, err := run.ExecuteScenario(second, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached || rep.Scenario != "multilat-town" {
		t.Errorf("scenario second run: cached=%v scenario=%q", info.Cached, rep.Scenario)
	}
	if got := second.TrialsExecuted(); got != 0 {
		t.Errorf("cached suite run computed %d trials, want 0", got)
	}
}

// TestCacheKeyedOnParameters verifies that seed, trial count, and shard size
// each miss the cache instead of serving a stale result.
func TestCacheKeyedOnParameters(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	sc, _ := engine.Find("multilat-town")

	base := run.Options{Seed: 1, Trials: 2, CacheDir: dir}
	variants := map[string]run.Options{
		"same":       base,
		"seed":       {Seed: 2, Trials: 2, CacheDir: dir},
		"trials":     {Seed: 1, Trials: 3, CacheDir: dir},
		"shard size": {Seed: 1, Trials: 2, CacheDir: dir, ShardSize: 1},
	}

	s, err := run.NewSession(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := run.ExecuteScenario(s, sc); err != nil {
		t.Fatal(err)
	}
	for name, opts := range variants {
		s2, err := run.NewSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		_, info, err := run.ExecuteScenario(s2, sc)
		if err != nil {
			t.Fatal(err)
		}
		if name == "same" && !info.Cached {
			t.Error("identical parameters missed the cache")
		}
		if name != "same" && info.Cached {
			t.Errorf("changed %s but hit the cache", name)
		}
	}
}

func TestNoCacheDisablesCaching(t *testing.T) {
	s, err := run.NewSession(run.Options{Seed: 1, Trials: 2, NoCache: true, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheDir() != "" {
		t.Errorf("NoCache session still has cache dir %q", s.CacheDir())
	}
	sc, _ := engine.Find("multilat-town")
	for i := 0; i < 2; i++ {
		if _, info, err := run.ExecuteScenario(s, sc); err != nil || info.Cached {
			t.Fatalf("run %d: cached=%v err=%v", i, info.Cached, err)
		}
	}
	if s.TrialsExecuted() != 4 {
		t.Errorf("trials executed %d, want 4", s.TrialsExecuted())
	}
}

func TestProgressStream(t *testing.T) {
	var buf bytes.Buffer
	s, err := run.NewSession(run.Options{Seed: 1, Trials: 4, NoCache: true, Progress: &buf})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := engine.Find("multilat-town")
	if _, _, err := run.ExecuteScenario(s, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "multilat-town") || !strings.Contains(out, "4/4 trials") {
		t.Errorf("progress stream incomplete: %q", out)
	}
}

func TestSessionRejectsBadOptions(t *testing.T) {
	if _, err := run.NewSession(run.Options{Workers: -1}); err == nil {
		t.Error("want error for negative workers")
	}
	if _, err := run.NewSession(run.Options{Trials: -1}); err == nil {
		t.Error("want error for negative trials")
	}
}
