package run_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/cache"
	"resilientloc/internal/engine/params"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
)

// fastFigs is a small cross-section of the figure suite: two single-trial
// figures and the 36-trial maxrange sweep; together with the library
// scenario below they cover every campaign shape the unified runner serves.
var fastFigs = []string{"fig11", "fig20", "maxrange"}

func figSpec(id string, seed int64) spec.JobSpec {
	return spec.JobSpec{Kind: spec.KindFigure, ID: id, Seed: seed}
}

func scenSpec(id string, seed int64, trials, shardSize int) spec.JobSpec {
	return spec.JobSpec{Kind: spec.KindScenario, ID: id, Seed: seed, Trials: trials, ShardSize: shardSize}
}

func newSession(t *testing.T, opts run.Options) *run.Session {
	t.Helper()
	s, err := run.NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCachedSuiteRunComputesNothing is the acceptance check for the result
// cache: a second suite run over the same (scenario, seed, trials, shard
// size, binary) performs zero trial computation and returns byte-identical
// figure output.
func TestCachedSuiteRunComputesNothing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")

	first := newSession(t, run.Options{CacheDir: dir})
	firstOut := map[string]string{}
	for _, id := range fastFigs {
		res, info, err := run.ExecuteSpec(first, figSpec(id, 1))
		if err != nil {
			t.Fatal(err)
		}
		if info.Cached {
			t.Fatalf("%s: first run claims to be cached", id)
		}
		firstOut[id] = res.Figure.Render()
	}
	town := scenSpec("multilat-town", 1, 0, 0)
	if _, info, err := run.ExecuteSpec(first, town); err != nil || info.Cached {
		t.Fatalf("scenario first run: cached=%v err=%v", info.Cached, err)
	}
	if first.TrialsExecuted() == 0 {
		t.Fatal("first session executed no trials")
	}

	second := newSession(t, run.Options{CacheDir: dir})
	for _, id := range fastFigs {
		res, info, err := run.ExecuteSpec(second, figSpec(id, 1))
		if err != nil {
			t.Fatal(err)
		}
		if !info.Cached {
			t.Errorf("%s: second run missed the cache", id)
		}
		if res.Figure.Render() != firstOut[id] {
			t.Errorf("%s: cached bytes differ\n--- first ---\n%s--- second ---\n%s", id, firstOut[id], res.Figure.Render())
		}
	}
	res, info, err := run.ExecuteSpec(second, town)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached || res.Report.Scenario != "multilat-town" {
		t.Errorf("scenario second run: cached=%v scenario=%q", info.Cached, res.Report.Scenario)
	}
	if got := second.TrialsExecuted(); got != 0 {
		t.Errorf("cached suite run computed %d trials, want 0", got)
	}
}

// TestCacheKeyedOnParameters verifies that seed, trial count, and shard size
// each miss the cache instead of serving a stale result. The parameters are
// per-spec now, so one session exercises every variant.
func TestCacheKeyedOnParameters(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s := newSession(t, run.Options{CacheDir: dir})

	base := scenSpec("multilat-town", 1, 2, 0)
	variants := map[string]spec.JobSpec{
		"same":       base,
		"seed":       scenSpec("multilat-town", 2, 2, 0),
		"trials":     scenSpec("multilat-town", 1, 3, 0),
		"shard size": scenSpec("multilat-town", 1, 2, 1),
	}

	if _, _, err := run.ExecuteSpec(s, base); err != nil {
		t.Fatal(err)
	}
	for name, sp := range variants {
		_, info, err := run.ExecuteSpec(s, sp)
		if err != nil {
			t.Fatal(err)
		}
		if name == "same" && !info.Cached {
			t.Error("identical parameters missed the cache")
		}
		if name != "same" && info.Cached {
			t.Errorf("changed %s but hit the cache", name)
		}
	}
}

// TestCacheKeyedOnOperatingPoint: factory instances share a scenario name
// across nearby operating points (NoiseSweep truncates its delta into the
// name), so the resolved params must be a key ingredient — and a spelled-out
// default must share the entry of an omitted one.
func TestCacheKeyedOnOperatingPoint(t *testing.T) {
	s := newSession(t, run.Options{CacheDir: filepath.Join(t.TempDir(), "cache")})

	point := func(delta float64) spec.JobSpec {
		sp := scenSpec("ranging-noise", 1, 2, 0)
		sp.Params = params.Map{"delta_db": params.Num(delta)}
		return sp
	}
	if _, _, err := run.ExecuteSpec(s, point(6)); err != nil {
		t.Fatal(err)
	}
	// Same operating point: hit. Same scenario NAME (6.2 truncates to
	// "ranging-noise-6db" too): miss.
	if _, info, err := run.ExecuteSpec(s, point(6)); err != nil || !info.Cached {
		t.Errorf("same operating point missed the cache (err=%v)", err)
	}
	if _, info, err := run.ExecuteSpec(s, point(6.2)); err != nil || info.Cached {
		t.Errorf("delta 6.2 hit delta 6's entry (err=%v)", err)
	}
	// The factory's default point, spelled out or omitted, is one entry.
	bare := scenSpec("ranging-noise", 1, 2, 0)
	if _, info, err := run.ExecuteSpec(s, bare); err != nil || !info.Cached {
		t.Errorf("param-less factory spec missed the spelled-out default's entry (err=%v, cached=%v)", err, info.Cached)
	}
}

func TestNoCacheDisablesCaching(t *testing.T) {
	s := newSession(t, run.Options{NoCache: true, CacheDir: t.TempDir()})
	if s.CacheDir() != "" {
		t.Errorf("NoCache session still has cache dir %q", s.CacheDir())
	}
	sp := scenSpec("multilat-town", 1, 2, 0)
	for i := 0; i < 2; i++ {
		_, info, err := run.ExecuteSpec(s, sp)
		if err != nil || info.Cached {
			t.Fatalf("run %d: cached=%v err=%v", i, info.Cached, err)
		}
		if info.CacheKey != "" {
			t.Errorf("run %d: cache-off execution reports cache key %q", i, info.CacheKey)
		}
	}
	if s.TrialsExecuted() != 4 {
		t.Errorf("trials executed %d, want 4", s.TrialsExecuted())
	}
}

// TestCacheKeyAddressesEntry checks Info.CacheKey is the served content
// address: the raw entry behind it (Session.CacheEntry, locd's /v1/cache) is
// the self-describing document for exactly this job.
func TestCacheKeyAddressesEntry(t *testing.T) {
	s := newSession(t, run.Options{CacheDir: filepath.Join(t.TempDir(), "cache")})
	_, info, err := run.ExecuteSpec(s, scenSpec("multilat-town", 1, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if info.CacheKey == "" {
		t.Fatal("cached session reported no cache key")
	}
	b, ok, err := s.CacheEntry(info.CacheKey)
	if err != nil || !ok {
		t.Fatalf("CacheEntry(%s): ok=%v err=%v", info.CacheKey, ok, err)
	}
	if !bytes.Contains(b, []byte("multilat-town")) {
		t.Errorf("raw entry does not mention its scenario: %.120s", b)
	}
	if _, ok, _ := s.CacheEntry(strings.Repeat("0", 64)); ok {
		t.Error("absent hash reported as existing")
	}
}

// TestRetentionJobsBypassCache: a spec asking for per-trial retention must
// always compute — retained values are excluded from the cache's JSON, so
// a hit would return a result stripped of exactly what was asked for. The
// non-retention twin of the same job still caches normally.
func TestRetentionJobsBypassCache(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s := newSession(t, run.Options{CacheDir: dir})
	plain := scenSpec("multilat-town", 1, 2, 0)
	keep := plain
	keep.KeepTrialValues = true

	if _, _, err := run.ExecuteSpec(s, plain); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, info, err := run.ExecuteSpec(s, keep)
		if err != nil {
			t.Fatal(err)
		}
		if info.Cached || info.CacheKey != "" {
			t.Fatalf("retention run %d served from cache (key %q)", i, info.CacheKey)
		}
		if len(res.Report.TrialScalars) == 0 {
			t.Fatalf("retention run %d returned no per-trial values", i)
		}
	}
	if _, info, err := run.ExecuteSpec(s, plain); err != nil || !info.Cached {
		t.Errorf("plain twin no longer cached after retention runs: cached=%v err=%v", info.Cached, err)
	}
}

// TestProgressKeyedPerJob: two concurrent jobs of the same scenario at
// different seeds each own their own milestone counter — neither job's
// lines are suppressed or reset by the other's completion.
func TestProgressKeyedPerJob(t *testing.T) {
	var buf bytes.Buffer
	s := newSession(t, run.Options{NoCache: true, Progress: &buf, SuiteParallel: 2})
	jobs, err := spec.ResolveAll([]spec.JobSpec{
		scenSpec("multilat-town", 1, 8, 1),
		scenSpec("multilat-town", 2, 8, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range run.ExecuteAll(s, jobs, nil) {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
	}
	// Each job independently reaches its 8/8 milestone exactly once.
	if got := strings.Count(buf.String(), "8/8 trials"); got != 2 {
		t.Errorf("final milestone appeared %d times, want once per job: %q", got, buf.String())
	}
}

func TestProgressStream(t *testing.T) {
	var buf bytes.Buffer
	s := newSession(t, run.Options{NoCache: true, Progress: &buf})
	if _, _, err := run.ExecuteSpec(s, scenSpec("multilat-town", 1, 4, 0)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "multilat-town") || !strings.Contains(out, "4/4 trials") {
		t.Errorf("progress stream incomplete: %q", out)
	}
}

// TestOnProgressKeyedByJobID checks the service hook: counters arrive keyed
// by the spec's content hash, monotonically, ending at the full trial count.
func TestOnProgressKeyedByJobID(t *testing.T) {
	sp := scenSpec("multilat-town", 1, 4, 1)
	type tick struct {
		id          string
		done, total int
	}
	var ticks []tick
	s := newSession(t, run.Options{NoCache: true, OnProgress: func(id string, done, total int) {
		ticks = append(ticks, tick{id, done, total})
	}})
	if _, _, err := run.ExecuteSpec(s, sp); err != nil {
		t.Fatal(err)
	}
	if len(ticks) == 0 {
		t.Fatal("no OnProgress ticks")
	}
	last := 0
	for _, tk := range ticks {
		if tk.id != sp.Hash() {
			t.Errorf("tick keyed by %q, want the spec hash %q", tk.id, sp.Hash())
		}
		if tk.total != 4 || tk.done <= last-1 {
			t.Errorf("non-monotonic or mistotaled tick %+v", tk)
		}
		last = tk.done
	}
	if last != 4 {
		t.Errorf("final tick %d/4, want 4/4", last)
	}
}

func TestSessionRejectsBadOptions(t *testing.T) {
	if _, err := run.NewSession(run.Options{Workers: -1}); err == nil {
		t.Error("want error for negative workers")
	}
	if _, err := run.NewSession(run.Options{Trials: -1}); err == nil {
		t.Error("want error for negative trials")
	}
	if _, err := run.NewSession(run.Options{SuiteParallel: -1}); err == nil {
		t.Error("want error for negative suite parallelism")
	}
	if _, err := run.NewSession(run.Options{CacheGC: "sometimes"}); err == nil {
		t.Error("want error for invalid cache-gc value")
	}
	if _, err := run.NewSession(run.Options{ProgressRefresh: -time.Second}); err == nil {
		t.Error("want error for negative progress refresh")
	}
}

// fastFigJobs resolves the suite jobs for fastFigs.
func fastFigJobs(t testing.TB, seed int64) []spec.Resolved {
	t.Helper()
	specs := make([]spec.JobSpec, len(fastFigs))
	for i, id := range fastFigs {
		specs[i] = figSpec(id, seed)
	}
	jobs, err := spec.ResolveAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestSuiteParallelMatchesGoldenCorpus is the acceptance check for the
// suite scheduler: overlapped execution must render every figure
// byte-identically to the committed golden corpus (which was generated by
// strictly serial execution) at seeds 1 and 5.
func TestSuiteParallelMatchesGoldenCorpus(t *testing.T) {
	goldenDir := filepath.Join("..", "..", "experiments", "testdata", "golden")
	for _, seed := range []int64{1, 5} {
		s := newSession(t, run.Options{NoCache: true, SuiteParallel: 4})
		for _, o := range run.ExecuteAll(s, fastFigJobs(t, seed), nil) {
			if o.Err != nil {
				t.Fatalf("%s: %v", o.Spec.ID, o.Err)
			}
			want, err := os.ReadFile(filepath.Join(goldenDir, fmt.Sprintf("%s_seed%d.golden", o.Spec.ID, seed)))
			if err != nil {
				t.Fatal(err)
			}
			if got := o.Result.Figure.Render(); got != string(want) {
				t.Errorf("%s seed %d under -suite-parallel 4 diverged from golden output\n--- got ---\n%s--- want ---\n%s",
					o.Spec.ID, seed, got, want)
			}
		}
	}
}

// TestSuiteParallelByteIdenticalAndOrdered runs the same suite at several
// overlap factors and checks (a) rendered results are byte-identical to
// sequential execution and (b) onDone always reports jobs in submission
// order, even though overlapped dispatch reorders execution longest-first.
func TestSuiteParallelByteIdenticalAndOrdered(t *testing.T) {
	render := func(suiteParallel int) []string {
		s := newSession(t, run.Options{NoCache: true, SuiteParallel: suiteParallel})
		var order, rendered []string
		outs := run.ExecuteAll(s, fastFigJobs(t, 1), func(o run.Outcome) {
			order = append(order, o.Spec.ID)
		})
		for _, o := range outs {
			if o.Err != nil {
				t.Fatalf("%s: %v", o.Spec.ID, o.Err)
			}
			rendered = append(rendered, o.Result.Figure.Render())
		}
		if strings.Join(order, ",") != strings.Join(fastFigs, ",") {
			t.Errorf("suite-parallel %d: onDone order %v, want %v", suiteParallel, order, fastFigs)
		}
		return rendered
	}
	sequential := render(1)
	// 0 resolves to GOMAXPROCS (clamped to the job count); 2 exercises a
	// partial overlap where some job must wait for a scheduler slot.
	for _, sp := range []int{0, 2} {
		got := render(sp)
		for i := range sequential {
			if got[i] != sequential[i] {
				t.Errorf("suite-parallel %d: %s differs from sequential output", sp, fastFigs[i])
			}
		}
	}
}

// TestExecuteAllUnorderedReportsEachJobOnce: the unordered variant still
// returns submission-ordered outcomes and invokes onDone exactly once per
// job — just not necessarily in submission order.
func TestExecuteAllUnorderedReportsEachJobOnce(t *testing.T) {
	s := newSession(t, run.Options{NoCache: true, SuiteParallel: 2})
	seen := map[string]int{}
	outs := run.ExecuteAllUnordered(s, fastFigJobs(t, 1), func(o run.Outcome) {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Spec.ID, o.Err)
		}
		seen[o.Spec.ID]++
	})
	for i, o := range outs {
		if o.Spec.ID != fastFigs[i] {
			t.Errorf("outcome %d is %s, want submission order %v", i, o.Spec.ID, fastFigs)
		}
	}
	for _, id := range fastFigs {
		if seen[id] != 1 {
			t.Errorf("onDone fired %d times for %s, want exactly once", seen[id], id)
		}
	}
}

// TestCacheHitDoesNotReplayExecutionMeta is the regression test for the
// stale-metadata bug: the run that populates the cache executes with 4
// workers, and a later hit from a -parallel 1 session must not report those
// 4 workers or the populating run's wall time — on disk the entry stores
// neither, and the returned report is stamped with this invocation's
// values.
func TestCacheHitDoesNotReplayExecutionMeta(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	sp := scenSpec("multilat-town", 1, 8, 1)

	first := newSession(t, run.Options{Workers: 4, CacheDir: dir})
	res1, info, err := run.ExecuteSpec(first, sp)
	if err != nil || info.Cached {
		t.Fatalf("populating run: cached=%v err=%v", info.Cached, err)
	}
	if res1.Report.Workers == 0 {
		t.Fatalf("populating run reports no workers; the fixture needs a parallel run")
	}

	// The stored entry must hold no execution metadata at all.
	c, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := cache.Key{Kind: spec.KindScenario, Scenario: "multilat-town", Seed: 1, Trials: 8, ShardSize: 1,
		Fingerprint: cache.Fingerprint()}
	var stored spec.Value
	if hit, err := c.Get(key, &stored); err != nil || !hit {
		t.Fatalf("stored entry lookup: hit=%v err=%v", hit, err)
	}
	if stored.Report.Workers != 0 || stored.Report.ElapsedSeconds != 0 {
		t.Errorf("cache stores execution metadata: workers=%d elapsed=%g, want both 0",
			stored.Report.Workers, stored.Report.ElapsedSeconds)
	}

	second := newSession(t, run.Options{Workers: 1, CacheDir: dir})
	res2, info, err := run.ExecuteSpec(second, sp)
	if err != nil || !info.Cached {
		t.Fatalf("hit run: cached=%v err=%v", info.Cached, err)
	}
	if res2.Report.Workers != 0 {
		t.Errorf("cache hit reports %d workers from the populating run, want 0", res2.Report.Workers)
	}
}

// valueCampaign wraps a scenario as a Campaign[*spec.Value], the way tests
// build synthetic resolved jobs outside the registries.
func valueCampaign(sc engine.Scenario) engine.Campaign[*spec.Value] {
	return engine.Campaign[*spec.Value]{
		Scenario: sc,
		Finalize: func(rep *engine.Report) (*spec.Value, error) { return &spec.Value{Report: rep}, nil },
	}
}

// TestSuiteStopsAfterFailure pins the scheduler's fail-fast contract: the
// suite's genuine failures are the non-ErrSkipped errors (exactly one
// here, since only one job can fail), nothing starts fresh after a
// failure, every job still receives an outcome, and in-flight campaigns
// report a usable one.
func TestSuiteStopsAfterFailure(t *testing.T) {
	okJob := func() spec.Resolved {
		r, err := spec.Resolve(scenSpec("multilat-town", 1, 2, 0))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	boomSc := engine.Scenario{
		Name: "boom", Trials: 2,
		Run: func(*engine.T) error { return fmt.Errorf("kaboom") },
	}
	boom := spec.Resolved{
		Spec:     spec.JobSpec{Kind: spec.KindScenario, ID: "boom", Seed: 1, Trials: 2},
		Campaign: valueCampaign(boomSc),
		Trials:   2, ShardSize: engine.DefaultShardSize,
	}
	jobs := []spec.Resolved{okJob(), boom, okJob(), okJob()}

	seq := newSession(t, run.Options{NoCache: true, SuiteParallel: 1})
	outs := run.ExecuteAll(seq, jobs, nil)
	if len(outs) != len(jobs) || outs[0].Err != nil || outs[1].Err == nil {
		t.Fatalf("sequential failure lost outcomes: %+v", outs)
	}
	for _, o := range outs[2:] {
		if !errors.Is(o.Err, run.ErrSkipped) {
			t.Errorf("sequential job %s after the failure: %v, want ErrSkipped", o.Spec.ID, o.Err)
		}
	}

	par := newSession(t, run.Options{NoCache: true, SuiteParallel: 2})
	outs = run.ExecuteAll(par, jobs, nil)
	if len(outs) != len(jobs) {
		t.Fatalf("overlapped suite returned %d outcomes, want %d", len(outs), len(jobs))
	}
	var genuine []string
	for _, o := range outs {
		if o.Err == nil {
			if o.Result == nil {
				t.Errorf("job %s has neither a result nor an error", o.Spec.ID)
			}
			continue
		}
		if !errors.Is(o.Err, run.ErrSkipped) {
			genuine = append(genuine, o.Err.Error())
		}
	}
	if len(genuine) != 1 || !strings.Contains(genuine[0], "kaboom") {
		t.Errorf("genuine failures = %v, want exactly the kaboom error", genuine)
	}
}

// TestCacheGetErrorWarns plants a parseable entry whose value no longer
// decodes into the expected result type: the session must warn once and
// fall back to recomputation instead of silently recomputing.
func TestCacheGetErrorWarns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := cache.Key{Kind: spec.KindScenario, Scenario: "multilat-town", Seed: 1, Trials: 2,
		ShardSize: engine.DefaultShardSize, Fingerprint: cache.Fingerprint()}
	if err := c.Put(key, []int{1, 2, 3}); err != nil { // an array cannot decode into a Value
		t.Fatal(err)
	}

	var warnings bytes.Buffer
	s := newSession(t, run.Options{CacheDir: dir, Warnings: &warnings})
	sp := scenSpec("multilat-town", 1, 2, 0)
	res, info, err := run.ExecuteSpec(s, sp)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Error("undecodable entry served as a cache hit")
	}
	if res == nil || s.TrialsExecuted() != 2 {
		t.Errorf("fallback recompute did not run: trials=%d", s.TrialsExecuted())
	}
	if w := warnings.String(); !strings.Contains(w, "multilat-town") || !strings.Contains(w, "cache") {
		t.Errorf("undecodable entry produced no warning, got %q", w)
	}

	// The recompute overwrote the bad entry, so the next run hits cleanly.
	warnings.Reset()
	s2 := newSession(t, run.Options{CacheDir: dir, Warnings: &warnings})
	if _, info, err := run.ExecuteSpec(s2, sp); err != nil || !info.Cached {
		t.Errorf("after recompute: cached=%v err=%v, want a clean hit", info.Cached, err)
	}
	if warnings.Len() != 0 {
		t.Errorf("clean hit still warned: %q", warnings.String())
	}
}

// TestProgressNonTTYNewlines pins the CI-log fix: a non-terminal progress
// writer receives newline-delimited milestone lines — never a carriage
// return — with a monotonic counter ending at total/total.
func TestProgressNonTTYNewlines(t *testing.T) {
	var buf bytes.Buffer
	s := newSession(t, run.Options{NoCache: true, Progress: &buf})
	if _, _, err := run.ExecuteSpec(s, scenSpec("multilat-town", 1, 16, 1)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.ContainsAny(out, "\r\x1b") {
		t.Errorf("non-TTY progress contains carriage returns or ANSI escapes: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 || len(lines) > 4 {
		t.Fatalf("want 1..4 milestone lines, got %d: %q", len(lines), out)
	}
	last := -1
	for _, l := range lines {
		var done, total int
		if _, err := fmt.Sscanf(strings.TrimSpace(strings.TrimPrefix(l, "multilat-town")), "%d/%d trials", &done, &total); err != nil {
			t.Fatalf("unparseable milestone line %q: %v", l, err)
		}
		if done <= last || total != 16 {
			t.Errorf("milestone counters not monotonic toward 16: %q", out)
		}
		last = done
	}
	if last != 16 {
		t.Errorf("final milestone %d/16, want 16/16: %q", last, out)
	}
}

// TestSessionCacheGCSweepsOldEntries checks NewSession's opportunistic
// sweep and its -cache-gc=off escape hatch.
func TestSessionCacheGCSweepsOldEntries(t *testing.T) {
	newAgedEntry := func(dir string) cache.Key {
		c, err := cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		k := cache.Key{Scenario: "dead", Seed: 9, Trials: 1, ShardSize: 1, Fingerprint: "deadbeef"}
		if err := c.Put(k, 42); err != nil {
			t.Fatal(err)
		}
		when := time.Now().Add(-45 * 24 * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, k.Hash()+".json"), when, when); err != nil {
			t.Fatal(err)
		}
		return k
	}
	lookup := func(dir string, k cache.Key) bool {
		c, err := cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		var v int
		hit, err := c.Get(k, &v)
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}

	offDir := filepath.Join(t.TempDir(), "cache-off")
	k := newAgedEntry(offDir)
	if _, err := run.NewSession(run.Options{CacheDir: offDir, CacheGC: "off"}); err != nil {
		t.Fatal(err)
	}
	if !lookup(offDir, k) {
		t.Error("-cache-gc=off session still swept the cache")
	}

	onDir := filepath.Join(t.TempDir(), "cache-on")
	k = newAgedEntry(onDir)
	if _, err := run.NewSession(run.Options{CacheDir: onDir}); err != nil {
		t.Fatal(err)
	}
	if lookup(onDir, k) {
		t.Error("session with default cache-gc left a 45-day-old entry")
	}
}

// TestSuiteParallelSharesCacheSafely schedules the same job twice in one
// overlapped suite: per-key serialization must compute it once and hand the
// duplicate a cache hit (never a torn or raced entry).
func TestSuiteParallelSharesCacheSafely(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s := newSession(t, run.Options{CacheDir: dir, SuiteParallel: 2})
	job, err := spec.Resolve(scenSpec("multilat-town", 1, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	outs := run.ExecuteAll(s, []spec.Resolved{job, job}, nil)
	hits := 0
	for _, o := range outs {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		if o.Info.Cached {
			hits++
		}
	}
	if hits != 1 || s.TrialsExecuted() != 4 {
		t.Errorf("duplicate campaign: %d cache hits, %d trials executed; want 1 hit and 4 trials",
			hits, s.TrialsExecuted())
	}
}
