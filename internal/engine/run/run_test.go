package run_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/cache"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/experiments"
)

// fastFigs is a small cross-section of the figure suite: two single-trial
// figures and the 36-trial maxrange sweep; together with the library
// scenario below they cover every campaign shape the unified runner serves.
var fastFigs = []string{"fig11", "fig20", "maxrange"}

func newSession(t *testing.T, dir string) *run.Session {
	t.Helper()
	s, err := run.NewSession(run.Options{Seed: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCachedSuiteRunComputesNothing is the acceptance check for the result
// cache: a second suite run over the same (scenario, seed, trials, shard
// size, binary) performs zero trial computation and returns byte-identical
// figure output.
func TestCachedSuiteRunComputesNothing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")

	first := newSession(t, dir)
	firstOut := map[string]string{}
	for _, id := range fastFigs {
		e, ok := experiments.Find(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		res, info, err := run.Execute(first, e.Campaign)
		if err != nil {
			t.Fatal(err)
		}
		if info.Cached {
			t.Fatalf("%s: first run claims to be cached", id)
		}
		firstOut[id] = res.Render()
	}
	sc, _ := engine.Find("multilat-town")
	if _, info, err := run.ExecuteScenario(first, sc); err != nil || info.Cached {
		t.Fatalf("scenario first run: cached=%v err=%v", info.Cached, err)
	}
	if first.TrialsExecuted() == 0 {
		t.Fatal("first session executed no trials")
	}

	second := newSession(t, dir)
	for _, id := range fastFigs {
		e, _ := experiments.Find(id)
		res, info, err := run.Execute(second, e.Campaign)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Cached {
			t.Errorf("%s: second run missed the cache", id)
		}
		if res.Render() != firstOut[id] {
			t.Errorf("%s: cached bytes differ\n--- first ---\n%s--- second ---\n%s", id, firstOut[id], res.Render())
		}
	}
	rep, info, err := run.ExecuteScenario(second, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached || rep.Scenario != "multilat-town" {
		t.Errorf("scenario second run: cached=%v scenario=%q", info.Cached, rep.Scenario)
	}
	if got := second.TrialsExecuted(); got != 0 {
		t.Errorf("cached suite run computed %d trials, want 0", got)
	}
}

// TestCacheKeyedOnParameters verifies that seed, trial count, and shard size
// each miss the cache instead of serving a stale result.
func TestCacheKeyedOnParameters(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	sc, _ := engine.Find("multilat-town")

	base := run.Options{Seed: 1, Trials: 2, CacheDir: dir}
	variants := map[string]run.Options{
		"same":       base,
		"seed":       {Seed: 2, Trials: 2, CacheDir: dir},
		"trials":     {Seed: 1, Trials: 3, CacheDir: dir},
		"shard size": {Seed: 1, Trials: 2, CacheDir: dir, ShardSize: 1},
	}

	s, err := run.NewSession(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := run.ExecuteScenario(s, sc); err != nil {
		t.Fatal(err)
	}
	for name, opts := range variants {
		s2, err := run.NewSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		_, info, err := run.ExecuteScenario(s2, sc)
		if err != nil {
			t.Fatal(err)
		}
		if name == "same" && !info.Cached {
			t.Error("identical parameters missed the cache")
		}
		if name != "same" && info.Cached {
			t.Errorf("changed %s but hit the cache", name)
		}
	}
}

func TestNoCacheDisablesCaching(t *testing.T) {
	s, err := run.NewSession(run.Options{Seed: 1, Trials: 2, NoCache: true, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheDir() != "" {
		t.Errorf("NoCache session still has cache dir %q", s.CacheDir())
	}
	sc, _ := engine.Find("multilat-town")
	for i := 0; i < 2; i++ {
		if _, info, err := run.ExecuteScenario(s, sc); err != nil || info.Cached {
			t.Fatalf("run %d: cached=%v err=%v", i, info.Cached, err)
		}
	}
	if s.TrialsExecuted() != 4 {
		t.Errorf("trials executed %d, want 4", s.TrialsExecuted())
	}
}

func TestProgressStream(t *testing.T) {
	var buf bytes.Buffer
	s, err := run.NewSession(run.Options{Seed: 1, Trials: 4, NoCache: true, Progress: &buf})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := engine.Find("multilat-town")
	if _, _, err := run.ExecuteScenario(s, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "multilat-town") || !strings.Contains(out, "4/4 trials") {
		t.Errorf("progress stream incomplete: %q", out)
	}
}

func TestSessionRejectsBadOptions(t *testing.T) {
	if _, err := run.NewSession(run.Options{Workers: -1}); err == nil {
		t.Error("want error for negative workers")
	}
	if _, err := run.NewSession(run.Options{Trials: -1}); err == nil {
		t.Error("want error for negative trials")
	}
	if _, err := run.NewSession(run.Options{SuiteParallel: -1}); err == nil {
		t.Error("want error for negative suite parallelism")
	}
	if _, err := run.NewSession(run.Options{CacheGC: "sometimes"}); err == nil {
		t.Error("want error for invalid cache-gc value")
	}
}

// fastFigJobs builds the suite jobs for fastFigs.
func fastFigJobs(t testing.TB) []run.Job[*experiments.Result] {
	t.Helper()
	jobs := make([]run.Job[*experiments.Result], 0, len(fastFigs))
	for _, id := range fastFigs {
		e, ok := experiments.Find(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		jobs = append(jobs, run.Job[*experiments.Result]{Name: e.ID, Build: e.Campaign})
	}
	return jobs
}

// TestSuiteParallelMatchesGoldenCorpus is the acceptance check for the
// suite scheduler: overlapped execution must render every figure
// byte-identically to the committed golden corpus (which was generated by
// strictly serial execution) at seeds 1 and 5.
func TestSuiteParallelMatchesGoldenCorpus(t *testing.T) {
	goldenDir := filepath.Join("..", "..", "experiments", "testdata", "golden")
	for _, seed := range []int64{1, 5} {
		s, err := run.NewSession(run.Options{Seed: seed, NoCache: true, SuiteParallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range run.ExecuteAll(s, fastFigJobs(t), nil) {
			if o.Err != nil {
				t.Fatalf("%s: %v", o.Name, o.Err)
			}
			want, err := os.ReadFile(filepath.Join(goldenDir, fmt.Sprintf("%s_seed%d.golden", o.Name, seed)))
			if err != nil {
				t.Fatal(err)
			}
			if got := o.Result.Render(); got != string(want) {
				t.Errorf("%s seed %d under -suite-parallel 4 diverged from golden output\n--- got ---\n%s--- want ---\n%s",
					o.Name, seed, got, want)
			}
		}
	}
}

// TestSuiteParallelByteIdenticalAndOrdered runs the same suite at several
// overlap factors and checks (a) rendered results are byte-identical to
// sequential execution and (b) onDone always reports jobs in suite order.
func TestSuiteParallelByteIdenticalAndOrdered(t *testing.T) {
	render := func(suiteParallel int) []string {
		s, err := run.NewSession(run.Options{Seed: 1, NoCache: true, SuiteParallel: suiteParallel})
		if err != nil {
			t.Fatal(err)
		}
		var order, rendered []string
		outs := run.ExecuteAll(s, fastFigJobs(t), func(o run.Outcome[*experiments.Result]) {
			order = append(order, o.Name)
		})
		for _, o := range outs {
			if o.Err != nil {
				t.Fatalf("%s: %v", o.Name, o.Err)
			}
			rendered = append(rendered, o.Result.Render())
		}
		if strings.Join(order, ",") != strings.Join(fastFigs, ",") {
			t.Errorf("suite-parallel %d: onDone order %v, want %v", suiteParallel, order, fastFigs)
		}
		return rendered
	}
	sequential := render(1)
	// 0 resolves to GOMAXPROCS (clamped to the job count); 2 exercises a
	// partial overlap where some job must wait for a scheduler slot.
	for _, sp := range []int{0, 2} {
		got := render(sp)
		for i := range sequential {
			if got[i] != sequential[i] {
				t.Errorf("suite-parallel %d: %s differs from sequential output", sp, fastFigs[i])
			}
		}
	}
}

// TestCacheHitDoesNotReplayExecutionMeta is the regression test for the
// stale-metadata bug: the run that populates the cache executes with 4
// workers, and a later hit from a -parallel 1 session must not report those
// 4 workers or the populating run's wall time — on disk the entry stores
// neither, and the returned report is stamped with this invocation's
// values.
func TestCacheHitDoesNotReplayExecutionMeta(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	sc, _ := engine.Find("multilat-town")

	first, err := run.NewSession(run.Options{Seed: 1, Trials: 8, ShardSize: 1, Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep1, info, err := run.ExecuteScenario(first, sc)
	if err != nil || info.Cached {
		t.Fatalf("populating run: cached=%v err=%v", info.Cached, err)
	}
	if rep1.Workers == 0 {
		t.Fatalf("populating run reports no workers; the fixture needs a parallel run")
	}

	// The stored entry must hold no execution metadata at all.
	c, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := cache.Key{Scenario: sc.Name, Seed: 1, Trials: 8, ShardSize: 1, Fingerprint: cache.Fingerprint()}
	var stored engine.Report
	if hit, err := c.Get(key, &stored); err != nil || !hit {
		t.Fatalf("stored entry lookup: hit=%v err=%v", hit, err)
	}
	if stored.Workers != 0 || stored.ElapsedSeconds != 0 {
		t.Errorf("cache stores execution metadata: workers=%d elapsed=%g, want both 0",
			stored.Workers, stored.ElapsedSeconds)
	}

	second, err := run.NewSession(run.Options{Seed: 1, Trials: 8, ShardSize: 1, Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep2, info, err := run.ExecuteScenario(second, sc)
	if err != nil || !info.Cached {
		t.Fatalf("hit run: cached=%v err=%v", info.Cached, err)
	}
	if rep2.Workers != 0 {
		t.Errorf("cache hit reports %d workers from the populating run, want 0", rep2.Workers)
	}
}

// TestSuiteStopsAfterFailure pins the scheduler's fail-fast contract: the
// failing job's error is the first one reported, nothing after it starts
// fresh (sequential truncates; overlapped marks never-started jobs
// ErrSkipped), and in-flight campaigns still report a usable outcome.
func TestSuiteStopsAfterFailure(t *testing.T) {
	sc, _ := engine.Find("multilat-town")
	okJob := func(name string) run.Job[*engine.Report] {
		return run.Job[*engine.Report]{Name: name,
			Build: func(int64) engine.Campaign[*engine.Report] { return engine.ReportCampaign(sc) }}
	}
	boom := run.Job[*engine.Report]{Name: "boom",
		Build: func(int64) engine.Campaign[*engine.Report] {
			return engine.ReportCampaign(engine.Scenario{
				Name: "boom", Trials: 2,
				Run: func(*engine.T) error { return fmt.Errorf("kaboom") },
			})
		}}
	jobs := []run.Job[*engine.Report]{okJob("a"), boom, okJob("b"), okJob("c")}

	seq, err := run.NewSession(run.Options{Seed: 1, Trials: 2, NoCache: true, SuiteParallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	outs := run.ExecuteAll(seq, jobs, nil)
	if len(outs) != 2 || outs[0].Err != nil || outs[1].Err == nil {
		t.Fatalf("sequential failure did not truncate the suite: %+v", outs)
	}

	par, err := run.NewSession(run.Options{Seed: 1, Trials: 2, NoCache: true, SuiteParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	outs = run.ExecuteAll(par, jobs, nil)
	if len(outs) != len(jobs) {
		t.Fatalf("overlapped suite returned %d outcomes, want %d", len(outs), len(jobs))
	}
	if outs[0].Err != nil {
		t.Errorf("job before the failure errored: %v", outs[0].Err)
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "kaboom") {
		t.Errorf("failing job's outcome = %v, want the kaboom error", outs[1].Err)
	}
	for _, o := range outs[2:] {
		if o.Err == nil && o.Result == nil {
			t.Errorf("job %s has neither a result nor an error", o.Name)
		}
		if o.Err != nil && !errors.Is(o.Err, run.ErrSkipped) {
			t.Errorf("job %s after the failure: %v, want ErrSkipped or success", o.Name, o.Err)
		}
	}
}

// TestCacheGetErrorWarns plants a parseable entry whose value no longer
// decodes into the expected result type: the session must warn once and
// fall back to recomputation instead of silently recomputing.
func TestCacheGetErrorWarns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	sc, _ := engine.Find("multilat-town")
	c, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := cache.Key{Scenario: sc.Name, Seed: 1, Trials: 2, ShardSize: engine.DefaultShardSize,
		Fingerprint: cache.Fingerprint()}
	if err := c.Put(key, []int{1, 2, 3}); err != nil { // an array cannot decode into a Report
		t.Fatal(err)
	}

	var warnings bytes.Buffer
	s, err := run.NewSession(run.Options{Seed: 1, Trials: 2, CacheDir: dir, Warnings: &warnings})
	if err != nil {
		t.Fatal(err)
	}
	rep, info, err := run.ExecuteScenario(s, sc)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Error("undecodable entry served as a cache hit")
	}
	if rep == nil || s.TrialsExecuted() != 2 {
		t.Errorf("fallback recompute did not run: trials=%d", s.TrialsExecuted())
	}
	if w := warnings.String(); !strings.Contains(w, "multilat-town") || !strings.Contains(w, "cache") {
		t.Errorf("undecodable entry produced no warning, got %q", w)
	}

	// The recompute overwrote the bad entry, so the next run hits cleanly.
	warnings.Reset()
	s2, err := run.NewSession(run.Options{Seed: 1, Trials: 2, CacheDir: dir, Warnings: &warnings})
	if err != nil {
		t.Fatal(err)
	}
	if _, info, err := run.ExecuteScenario(s2, sc); err != nil || !info.Cached {
		t.Errorf("after recompute: cached=%v err=%v, want a clean hit", info.Cached, err)
	}
	if warnings.Len() != 0 {
		t.Errorf("clean hit still warned: %q", warnings.String())
	}
}

// TestProgressNonTTYNewlines pins the CI-log fix: a non-terminal progress
// writer receives newline-delimited milestone lines — never a carriage
// return — with a monotonic counter ending at total/total.
func TestProgressNonTTYNewlines(t *testing.T) {
	var buf bytes.Buffer
	s, err := run.NewSession(run.Options{Seed: 1, Trials: 16, ShardSize: 1, NoCache: true, Progress: &buf})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := engine.Find("multilat-town")
	if _, _, err := run.ExecuteScenario(s, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.ContainsAny(out, "\r\x1b") {
		t.Errorf("non-TTY progress contains carriage returns or ANSI escapes: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 || len(lines) > 4 {
		t.Fatalf("want 1..4 milestone lines, got %d: %q", len(lines), out)
	}
	last := -1
	for _, l := range lines {
		var done, total int
		if _, err := fmt.Sscanf(strings.TrimSpace(strings.TrimPrefix(l, "multilat-town")), "%d/%d trials", &done, &total); err != nil {
			t.Fatalf("unparseable milestone line %q: %v", l, err)
		}
		if done <= last || total != 16 {
			t.Errorf("milestone counters not monotonic toward 16: %q", out)
		}
		last = done
	}
	if last != 16 {
		t.Errorf("final milestone %d/16, want 16/16: %q", last, out)
	}
}

// TestSessionCacheGCSweepsOldEntries checks NewSession's opportunistic
// sweep and its -cache-gc=off escape hatch.
func TestSessionCacheGCSweepsOldEntries(t *testing.T) {
	newAgedEntry := func(dir string) cache.Key {
		c, err := cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		k := cache.Key{Scenario: "dead", Seed: 9, Trials: 1, ShardSize: 1, Fingerprint: "deadbeef"}
		if err := c.Put(k, 42); err != nil {
			t.Fatal(err)
		}
		when := time.Now().Add(-45 * 24 * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, k.Hash()+".json"), when, when); err != nil {
			t.Fatal(err)
		}
		return k
	}
	lookup := func(dir string, k cache.Key) bool {
		c, err := cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		var v int
		hit, err := c.Get(k, &v)
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}

	offDir := filepath.Join(t.TempDir(), "cache-off")
	k := newAgedEntry(offDir)
	if _, err := run.NewSession(run.Options{Seed: 1, CacheDir: offDir, CacheGC: "off"}); err != nil {
		t.Fatal(err)
	}
	if !lookup(offDir, k) {
		t.Error("-cache-gc=off session still swept the cache")
	}

	onDir := filepath.Join(t.TempDir(), "cache-on")
	k = newAgedEntry(onDir)
	if _, err := run.NewSession(run.Options{Seed: 1, CacheDir: onDir}); err != nil {
		t.Fatal(err)
	}
	if lookup(onDir, k) {
		t.Error("session with default cache-gc left a 45-day-old entry")
	}
}

// TestSuiteParallelSharesCacheSafely schedules the same campaign twice in
// one overlapped suite: per-key serialization must compute it once and hand
// the duplicate a cache hit (never a torn or raced entry).
func TestSuiteParallelSharesCacheSafely(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := run.NewSession(run.Options{Seed: 1, Trials: 4, CacheDir: dir, SuiteParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := engine.Find("multilat-town")
	job := run.Job[*engine.Report]{Name: sc.Name,
		Build: func(int64) engine.Campaign[*engine.Report] { return engine.ReportCampaign(sc) }}
	outs := run.ExecuteAll(s, []run.Job[*engine.Report]{job, job}, nil)
	hits := 0
	for _, o := range outs {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		if o.Info.Cached {
			hits++
		}
	}
	if hits != 1 || s.TrialsExecuted() != 4 {
		t.Errorf("duplicate campaign: %d cache hits, %d trials executed; want 1 hit and 4 trials",
			hits, s.TrialsExecuted())
	}
}
