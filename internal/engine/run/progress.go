package run

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// progress renders streaming per-campaign trial counters for a session. On
// an interactive terminal it maintains an in-place status block with one
// line per active campaign (rewritten with ANSI cursor movement, so
// overlapped suite campaigns each own a line and completed campaigns scroll
// away above the block). On any other writer — CI logs, files, pipes — it
// emits newline-delimited milestone lines instead (each completed quarter
// of a campaign, plus completion), which keeps logs readable: carriage
// returns would fold a whole run into one unreadable mega-line and would
// interleave mid-line across concurrent campaigns.
type progress struct {
	w       io.Writer
	tty     bool
	refresh time.Duration    // min interval between TTY repaints (0 = every update)
	now     func() time.Time // injectable clock for tests

	mu         sync.Mutex
	order      []string          // active jobs (by id) in registration order
	lines      map[string]string // latest rendered line per active job id
	milestones map[string]int    // last quarter emitted per job id (non-TTY)
	drawn      int               // lines the TTY status block currently occupies
	suspended  bool              // block erased while other output is printing
	pending    []string          // permanent lines queued during suspension
	lastDraw   time.Time         // when the TTY block last repainted
}

// newProgress returns a renderer for w, or nil when progress is off. A
// positive refresh bounds TTY status-block repaints to at most one per
// interval; completion lines always render immediately.
func newProgress(w io.Writer, refresh time.Duration) *progress {
	if w == nil {
		return nil
	}
	return &progress{
		w:          w,
		tty:        isTTY(w),
		refresh:    refresh,
		now:        time.Now,
		lines:      make(map[string]string),
		milestones: make(map[string]int),
	}
}

// isTTY reports whether w is an interactive terminal. Only an *os.File can
// be one; the character-device check needs no platform dependencies.
func isTTY(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// progressLine is the shared one-campaign counter format.
func progressLine(name string, done, total int) string {
	return fmt.Sprintf("%-28s %4d/%d trials", name, done, total)
}

// callback returns the engine progress callback for one job, or nil when
// progress is off. Jobs are keyed by id — the spec's content hash — so two
// concurrent jobs of the same scenario at different seeds each own their
// own line and milestone counter; name is only the display label. Safe for
// concurrent campaigns: every write is made under the renderer's lock, one
// complete line at a time.
func (p *progress) callback(id, name string) func(done, total int) {
	if p == nil {
		return nil
	}
	return func(done, total int) { p.update(id, name, done, total) }
}

func (p *progress) update(id, name string, done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.tty {
		// Milestones: emit one line whenever the campaign crosses into a
		// new quarter of its total. done is monotonic per campaign, so at
		// most four lines appear and their counters never go backwards.
		q := 4
		if total > 0 {
			q = 4 * done / total
		}
		if q > p.milestones[id] {
			p.milestones[id] = q
			fmt.Fprintf(p.w, "%s\n", progressLine(name, done, total))
		}
		return
	}
	if _, ok := p.lines[id]; !ok {
		p.order = append(p.order, id)
	}
	p.lines[id] = progressLine(name, done, total)
	var permanent []string
	if done == total {
		permanent = append(permanent, p.lines[id])
		p.removeLocked(id)
	}
	if p.suspended {
		p.pending = append(p.pending, permanent...)
		return
	}
	if len(permanent) == 0 && p.refresh > 0 && p.now().Sub(p.lastDraw) < p.refresh {
		// Rate-limit pure counter repaints: the updated line is already
		// stored, so the next qualifying event (or the campaign's
		// completion, which always draws) repaints it. Only the in-place
		// block is throttled — non-TTY milestone lines are few by
		// construction.
		return
	}
	p.redrawLocked(permanent)
}

// suspend erases the TTY status block so the caller can print other output
// (a finished campaign's report) without the next repaint's cursor-up
// destroying it; state keeps accumulating until resume repaints the block
// below whatever was printed. Non-TTY writers need no coordination — their
// lines are self-contained — so suspension only gates the block.
func (p *progress) suspend() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.suspended = true
	if p.tty && p.drawn > 0 {
		fmt.Fprintf(p.w, "\r\x1b[%dA\x1b[J", p.drawn)
		p.drawn = 0
	}
}

// resume repaints the status block (and flushes completion lines queued
// while suspended) at the current cursor position.
func (p *progress) resume() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.suspended = false
	if p.tty && (len(p.pending) > 0 || len(p.order) > 0) {
		p.redrawLocked(p.pending)
		p.pending = nil
	}
}

// done retires a job from the renderer once its execution returns: an
// errored job leaves the TTY block, and the job's milestone state resets
// so a later re-run in the same session reports afresh.
func (p *progress) done(id string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.milestones, id)
	if l, ok := p.lines[id]; ok {
		p.removeLocked(id)
		if p.suspended {
			p.pending = append(p.pending, l)
			return
		}
		p.redrawLocked([]string{l})
	}
}

func (p *progress) removeLocked(id string) {
	delete(p.lines, id)
	for i, n := range p.order {
		if n == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

// redrawLocked repaints the TTY status block in place: cursor up to the
// block's first line, erase downward, print any newly permanent lines
// (completed campaigns), then one line per active campaign.
func (p *progress) redrawLocked(permanent []string) {
	var b strings.Builder
	if p.drawn > 0 {
		fmt.Fprintf(&b, "\r\x1b[%dA\x1b[J", p.drawn)
	}
	for _, l := range permanent {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, n := range p.order {
		b.WriteString(p.lines[n])
		b.WriteByte('\n')
	}
	p.drawn = len(p.order)
	if p.now != nil {
		p.lastDraw = p.now()
	}
	io.WriteString(p.w, b.String())
}
