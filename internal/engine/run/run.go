// Package run is the unified campaign runner shared by cmd/experiments and
// cmd/scenarios: one place for the common CLI flags, the on-disk result
// cache, streaming trial progress, and campaign execution. Both CLIs build
// engine Campaigns (figure reproductions as Campaign[*experiments.Result],
// library scenarios via engine.ReportCampaign) and hand them to Execute; the
// session decides whether the cache already holds the answer.
package run

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/cache"
)

// Options carries the execution parameters common to every campaign CLI.
type Options struct {
	// Trials overrides each scenario's default trial count when positive.
	Trials int
	// Workers is the engine worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Seed is the base seed; all runs are deterministic per seed.
	Seed int64
	// ShardSize overrides the engine's default shard partition when
	// positive. Aggregates are a pure function of (seed, trials, shard
	// size), so it is part of every cache key.
	ShardSize int
	// CacheDir is the result-cache directory; empty selects DefaultCacheDir.
	CacheDir string
	// NoCache disables the result cache entirely.
	NoCache bool
	// Progress, when non-nil, receives a streaming trials-completed counter
	// for each campaign as its shards finish.
	Progress io.Writer
}

// RegisterCommon registers the flags shared by every campaign CLI:
// -parallel, -seed, -cache, -no-cache. Flags whose applicability varies
// (like -trials) have their own Register helpers.
func (o *Options) RegisterCommon(fs *flag.FlagSet) {
	fs.IntVar(&o.Workers, "parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
	fs.Int64Var(&o.Seed, "seed", 1, "base random seed (runs are deterministic per seed)")
	fs.StringVar(&o.CacheDir, "cache", "", "result cache directory (default: the per-user cache dir)")
	fs.BoolVar(&o.NoCache, "no-cache", false, "disable the on-disk result cache")
}

// RegisterTrials registers the -trials override. Scenario CLIs expose it;
// the figure CLI does not, because a figure's trial structure is part of its
// definition.
func (o *Options) RegisterTrials(fs *flag.FlagSet) {
	fs.IntVar(&o.Trials, "trials", 0, "override each scenario's default trial count")
}

// RegisterShardSize registers the -shard-size override. It pairs with
// RegisterTrials on scenario CLIs; figure campaigns pin their own shard
// partitions, so the figure CLI registers neither.
func (o *Options) RegisterShardSize(fs *flag.FlagSet) {
	fs.IntVar(&o.ShardSize, "shard-size", 0, "trials per aggregation shard (0 = engine default)")
}

// DefaultCacheDir returns the per-user cache directory, or "" when the
// platform provides none (caching is then disabled rather than failing).
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "resilientloc")
}

// Session executes campaigns under one set of Options, tracking cache use
// and the number of trials actually computed.
type Session struct {
	opts           Options
	cache          *cache.Cache
	trialsExecuted int
}

// NewSession validates the options and opens the result cache (unless
// disabled). An unusable default cache directory degrades to cache-off; an
// explicitly requested directory that cannot be opened is an error.
func NewSession(opts Options) (*Session, error) {
	s := &Session{opts: opts}
	// Validate the engine configuration eagerly so flag errors surface
	// before any campaign runs.
	if _, err := engine.NewRunner(s.engineConfig(nil)); err != nil {
		return nil, err
	}
	if opts.NoCache {
		return s, nil
	}
	dir := opts.CacheDir
	explicit := dir != ""
	if !explicit {
		dir = DefaultCacheDir()
		if dir == "" {
			return s, nil
		}
	}
	c, err := cache.Open(dir)
	if err != nil {
		if explicit {
			return nil, err
		}
		return s, nil
	}
	s.cache = c
	return s, nil
}

// TrialsExecuted reports how many trials this session actually computed;
// cache hits contribute zero.
func (s *Session) TrialsExecuted() int { return s.trialsExecuted }

// CacheDir returns the directory of the session's cache, or "" when caching
// is off.
func (s *Session) CacheDir() string {
	if s.cache == nil {
		return ""
	}
	return s.cache.Dir()
}

// Info describes how one campaign execution was satisfied.
type Info struct {
	// Cached reports that the result came from the cache with no trial
	// computation.
	Cached bool
	// Trials is the effective trial count of the (possibly skipped) run.
	Trials int
	// Elapsed is the wall time of this execution, including cache lookup.
	Elapsed time.Duration
}

func (s *Session) engineConfig(progress func(done, total int)) engine.Config {
	return engine.Config{
		Workers:   s.opts.Workers,
		Trials:    s.opts.Trials,
		Seed:      s.opts.Seed,
		ShardSize: s.opts.ShardSize,
		Progress:  progress,
	}
}

// progressFunc builds the engine progress callback streaming a
// trials-completed counter line for the named campaign.
func (s *Session) progressFunc(name string) func(done, total int) {
	w := s.opts.Progress
	if w == nil {
		return nil
	}
	return func(done, total int) {
		fmt.Fprintf(w, "\r%-28s %4d/%d trials", name, done, total)
		if done == total {
			fmt.Fprintln(w)
		}
	}
}

// Execute runs one campaign through the session: build is invoked with the
// session's seed (so a campaign can never be computed for one seed and
// cached under another), then a cache hit returns the stored result with
// zero trial computation, and a miss runs the campaign on the engine and
// stores the result.
func Execute[R any](s *Session, build func(seed int64) engine.Campaign[R]) (R, Info, error) {
	var zero R
	start := time.Now()
	c := build(s.opts.Seed)
	runner, err := engine.NewRunner(s.engineConfig(s.progressFunc(c.Scenario.Name)))
	if err != nil {
		return zero, Info{}, err
	}
	trials, shardSize := engine.CampaignConfig(runner, c)
	var key cache.Key
	if s.cache != nil {
		// The key (and the whole-binary fingerprint it embeds) is only
		// worth computing when a cache exists to consult.
		key = cache.Key{
			Scenario:    c.Scenario.Name,
			Seed:        s.opts.Seed,
			Trials:      trials,
			ShardSize:   shardSize,
			Fingerprint: cache.Fingerprint(),
		}
		var res R
		if hit, err := s.cache.Get(key, &res); err == nil && hit {
			return res, Info{Cached: true, Trials: trials, Elapsed: time.Since(start)}, nil
		}
	}
	res, rep, err := engine.RunCampaign(runner, c)
	if err != nil {
		return zero, Info{}, err
	}
	s.trialsExecuted += rep.Trials
	if s.cache != nil {
		// Best-effort: a full disk or unwritable directory must not fail
		// the run whose result we already hold.
		_ = s.cache.Put(key, res)
	}
	return res, Info{Trials: rep.Trials, Elapsed: time.Since(start)}, nil
}

// ExecuteScenario runs a library scenario through the session as a report
// campaign (scenarios take their seed from the engine configuration, so the
// builder is seed-independent).
func ExecuteScenario(s *Session, sc engine.Scenario) (*engine.Report, Info, error) {
	return Execute(s, func(int64) engine.Campaign[*engine.Report] { return engine.ReportCampaign(sc) })
}
