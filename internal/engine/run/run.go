// Package run is the unified campaign runner shared by cmd/experiments,
// cmd/scenarios, and the locd service: one place for the common CLI flags,
// the on-disk result cache, streaming trial progress, and campaign
// execution.
//
// The unit of work is a declarative job description (spec.JobSpec): every
// caller — CLI flags, spec files, HTTP submissions — compiles down to specs,
// resolves them onto the registries (spec.Resolve), and executes them here.
// A Session owns the execution environment (worker count, cache, progress
// sinks); the spec owns everything the result is a function of (kind, job,
// seed, trials, shard size), which — plus the binary fingerprint — is the
// cache key. Jobs requesting per-trial retention bypass the cache, because
// retained values do not survive the cache's JSON round trip.
//
// Suites of independent jobs run through ExecuteAll, which overlaps up to
// Options.SuiteParallel campaigns on top of the engine's trial-level
// parallelism, dispatching the largest jobs first so the critical path is as
// short as the overlap allows. Every campaign draws its shard slots from the
// process-wide engine.SharedBudget, so overlapped campaigns share GOMAXPROCS
// instead of multiplying worker pools — and because shard partitions and
// merges are scheduling-independent, results are byte-identical at every
// overlap factor and dispatch order.
package run

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/cache"
	"resilientloc/internal/engine/params"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/obs"
)

// Run-layer telemetry: job counters, queue/in-flight gauges (the health
// endpoint's backpressure signals), and per-job wall-time. Spans (run.queued,
// run.job) record only when the caller's context carries a tracer.
var (
	obsJobs       = obs.Default().Counter("run_jobs_total")
	obsJobsCached = obs.Default().Counter("run_jobs_cached_total")
	obsJobsFailed = obs.Default().Counter("run_jobs_failed_total")
	obsQueued     = obs.Default().Gauge("run_jobs_queued")
	obsInflight   = obs.Default().Gauge("run_jobs_inflight")
	obsJobSec     = obs.Default().Histogram("run_job_seconds", obs.DefLatencyBuckets)
)

// Opportunistic cache-GC policy: at most one sweep per hour per directory,
// evicting entries untouched for 30 days (long-dead binary fingerprints)
// or, oldest first, beyond a 512 MiB total.
const (
	gcInterval = time.Hour
	gcMaxAge   = 30 * 24 * time.Hour
	gcMaxBytes = 512 << 20
)

// Options carries the execution environment common to every campaign
// front-end. Job-level parameters (seed, trial count, shard size) live in
// each spec.JobSpec; the Seed/Trials/ShardSize fields here are only the
// storage the flag-based CLIs compile into specs.
type Options struct {
	// Trials is the -trials flag value a CLI copies into its flag-built
	// specs (0 = each scenario's default). Spec files carry their own.
	Trials int
	// Workers is the engine worker-pool size (0 = GOMAXPROCS). Regardless
	// of its value, concurrent shard execution is bounded by the shared
	// worker budget (engine.SharedBudget), sized to GOMAXPROCS.
	Workers int
	// Seed is the -seed flag value a CLI copies into its flag-built specs.
	Seed int64
	// ShardSize is the -shard-size flag value a CLI copies into its
	// flag-built specs (0 = engine default).
	ShardSize int
	// SuiteParallel is how many independent campaigns ExecuteAll overlaps:
	// 1 (the default when registered as a flag) runs them sequentially,
	// 0 means GOMAXPROCS. Per-campaign results are identical at any value.
	SuiteParallel int
	// CacheDir is the result-cache directory; empty selects DefaultCacheDir.
	CacheDir string
	// NoCache disables the result cache entirely.
	NoCache bool
	// CacheGC controls the opportunistic cache sweep NewSession runs:
	// "" or "on" enables it, "off" disables it.
	CacheGC string
	// NoReuse disables the prefix-reuse planner: cacheable full runs compute
	// from scratch instead of extending surviving range-keyed entries. The
	// result bytes are identical either way (that is the planner's contract);
	// the switch exists for A/B timing and for forcing a truly cold run.
	NoReuse bool
	// Progress, when non-nil, receives streaming trials-completed updates
	// for each campaign as its shards finish: an in-place status block on a
	// terminal, newline-delimited milestone lines elsewhere.
	Progress io.Writer
	// ProgressRefresh bounds how often the TTY status block repaints: at
	// most once per interval (completion lines always render immediately).
	// 0 repaints on every update, which is the historical behavior.
	ProgressRefresh time.Duration
	// OnProgress, when non-nil, receives the same streaming trial counters
	// keyed by job ID (spec.JobSpec.Hash) instead of rendered text — the
	// hook the locd event streams are wired to. Calls are serialized per
	// session.
	OnProgress func(jobID string, done, total int)
	// Warnings receives non-fatal diagnostics (e.g. a cache entry that no
	// longer decodes); nil means os.Stderr.
	Warnings io.Writer
	// Params collects repeatable -param name=value flags; Specs copies the
	// map into every flag-built spec, selecting one operating point of a
	// parameterized factory or experiment. Spec files carry their own.
	Params params.FlagValue
}

// RegisterCommon registers the flags shared by every campaign CLI:
// -parallel, -seed, -cache, -no-cache, -cache-gc, -progress-refresh. Flags
// whose applicability varies (like -trials) have their own Register helpers.
func (o *Options) RegisterCommon(fs *flag.FlagSet) {
	fs.IntVar(&o.Workers, "parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
	fs.Int64Var(&o.Seed, "seed", 1, "base random seed (runs are deterministic per seed)")
	fs.StringVar(&o.CacheDir, "cache", "", "result cache directory (default: the per-user cache dir)")
	fs.BoolVar(&o.NoCache, "no-cache", false, "disable the on-disk result cache")
	fs.StringVar(&o.CacheGC, "cache-gc", "on", "opportunistic cache garbage collection (on|off)")
	fs.BoolVar(&o.NoReuse, "no-reuse", false,
		"disable the prefix-reuse planner (always compute full runs from scratch)")
	fs.DurationVar(&o.ProgressRefresh, "progress-refresh", 0,
		"minimum interval between terminal status-block repaints (0 = repaint on every update)")
}

// RegisterTrials registers the -trials override. Scenario CLIs expose it;
// the figure CLI does not, because a figure's trial structure is part of its
// definition.
func (o *Options) RegisterTrials(fs *flag.FlagSet) {
	fs.IntVar(&o.Trials, "trials", 0, "override each scenario's default trial count")
}

// RegisterShardSize registers the -shard-size override. It pairs with
// RegisterTrials on scenario CLIs; figure campaigns pin their own shard
// partitions, so the figure CLI registers neither.
func (o *Options) RegisterShardSize(fs *flag.FlagSet) {
	fs.IntVar(&o.ShardSize, "shard-size", 0, "trials per aggregation shard (0 = engine default)")
}

// RegisterParams registers the repeatable -param flag selecting one
// operating point of a parameterized scenario factory or experiment.
func (o *Options) RegisterParams(fs *flag.FlagSet) {
	fs.Var(&o.Params, "param",
		"scenario parameter as name=value (repeatable); see -list for each factory's schema")
}

// RegisterSuiteParallel registers the -suite-parallel overlap factor for
// CLIs that run whole suites.
func (o *Options) RegisterSuiteParallel(fs *flag.FlagSet) {
	fs.IntVar(&o.SuiteParallel, "suite-parallel", 1,
		"independent campaigns to overlap in suite runs (0 = GOMAXPROCS, 1 = sequential; results are identical at any value)")
}

// RejectSpecParameterFlags errors when any of the named flags was
// explicitly set on the command line: job-parameter flags (-seed, -trials,
// -shard-size) are compiled into flag-built specs, so combining them with
// -spec would silently lose against the file's embedded parameters.
func RejectSpecParameterFlags(fs *flag.FlagSet, names ...string) error {
	var conflict []string
	fs.Visit(func(f *flag.Flag) {
		for _, n := range names {
			if f.Name == n {
				conflict = append(conflict, "-"+n)
			}
		}
	})
	if len(conflict) > 0 {
		return fmt.Errorf("%s cannot be combined with a spec or sweep file, which carries its own job parameters",
			strings.Join(conflict, ", "))
	}
	return nil
}

// Specs compiles a list of job IDs into flag-parameterized specs of one
// kind: the bridge from a CLI's selection flags to the spec-driven
// execution path.
func (o Options) Specs(kind string, ids []string) []spec.JobSpec {
	specs := make([]spec.JobSpec, len(ids))
	for i, id := range ids {
		specs[i] = spec.JobSpec{Kind: kind, ID: id, Seed: o.Seed}
		if kind == spec.KindScenario {
			specs[i].Trials = o.Trials
			specs[i].ShardSize = o.ShardSize
		}
		if len(o.Params.M) > 0 {
			// Each spec gets its own copy: shared mutable state across a
			// batch would let one job's resolution alias another's identity.
			specs[i].Params = o.Params.M.Clone()
		}
	}
	return specs
}

// DefaultCacheDir returns the per-user cache directory, or "" when the
// platform provides none (caching is then disabled rather than failing).
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "resilientloc")
}

// Session executes resolved jobs under one set of Options, tracking cache
// use and the number of trials actually computed. A session is safe for
// concurrent ExecuteSpec/ExecuteAll calls; ExecuteAll is its suite
// scheduler.
type Session struct {
	opts  Options
	cache *cache.Cache
	warn  io.Writer
	prog  *progress

	mu             sync.Mutex
	trialsExecuted int

	// keyLocks serializes cache Get→compute→Put per cache key, so a suite
	// that schedules the same campaign twice computes it once and hands the
	// second execution a cache hit instead of racing on the entry.
	keyMu    sync.Mutex
	keyLocks map[string]*sync.Mutex

	// opMu serializes Options.OnProgress invocations across concurrently
	// running campaigns, making the hook's documented contract true.
	opMu sync.Mutex
}

// NewSession validates the options and opens the result cache (unless
// disabled), sweeping old cache entries opportunistically (unless
// CacheGC is "off"). An unusable default cache directory degrades to
// cache-off; an explicitly requested directory that cannot be opened is an
// error.
func NewSession(opts Options) (*Session, error) {
	if opts.SuiteParallel < 0 {
		return nil, fmt.Errorf("run: negative suite parallelism %d", opts.SuiteParallel)
	}
	if opts.ProgressRefresh < 0 {
		return nil, fmt.Errorf("run: negative progress refresh %v", opts.ProgressRefresh)
	}
	gc := true
	switch opts.CacheGC {
	case "", "on":
	case "off":
		gc = false
	default:
		return nil, fmt.Errorf("run: invalid -cache-gc value %q (want on or off)", opts.CacheGC)
	}
	if opts.Warnings == nil {
		opts.Warnings = os.Stderr
	}
	s := &Session{
		opts:     opts,
		warn:     opts.Warnings,
		prog:     newProgress(opts.Progress, opts.ProgressRefresh),
		keyLocks: make(map[string]*sync.Mutex),
	}
	// Validate the flag-level engine configuration eagerly so errors surface
	// before any campaign runs.
	cfg := engine.Config{Workers: opts.Workers, Trials: opts.Trials, Seed: opts.Seed, ShardSize: opts.ShardSize}
	if _, err := engine.NewRunner(cfg); err != nil {
		return nil, err
	}
	if opts.NoCache {
		return s, nil
	}
	dir := opts.CacheDir
	explicit := dir != ""
	if !explicit {
		dir = DefaultCacheDir()
		if dir == "" {
			return s, nil
		}
	}
	c, err := cache.Open(dir)
	if err != nil {
		if explicit {
			return nil, err
		}
		return s, nil
	}
	s.cache = c
	if gc {
		// Best-effort: a failed sweep must not block the run.
		_, _, _ = c.MaybeGC(gcInterval, gcMaxAge, gcMaxBytes)
	}
	return s, nil
}

// TrialsExecuted reports how many trials this session actually computed;
// cache hits contribute zero.
func (s *Session) TrialsExecuted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trialsExecuted
}

// CacheDir returns the directory of the session's cache, or "" when caching
// is off.
func (s *Session) CacheDir() string {
	if s.cache == nil {
		return ""
	}
	return s.cache.Dir()
}

// CacheEntry returns the raw stored cache entry addressed by a key hash, as
// served by locd's /v1/cache endpoint. The boolean reports existence; a
// session without a cache never has entries.
func (s *Session) CacheEntry(hash string) ([]byte, bool, error) {
	if s.cache == nil {
		return nil, false, nil
	}
	return s.cache.EntryByHash(hash)
}

// jobCacheKey builds the cache key of job's full run — the identity that
// every range-keyed partial of the job shares once RangeLo/RangeHi (and
// the partial retention flag) are stamped on top. One function so
// execution and the crash-resume probe can never drift apart on what a
// job's content address is.
func jobCacheKey(job spec.Resolved, trials, shardSize int) cache.Key {
	key := cache.Key{
		Kind:        job.Spec.Kind,
		Scenario:    job.Campaign.Scenario.Name,
		Seed:        job.Spec.Seed,
		Trials:      trials,
		ShardSize:   shardSize,
		Fingerprint: cache.Fingerprint(),
	}
	if len(job.Params) > 0 {
		key.Params = string(job.Params.Canonical())
	}
	return key
}

// RangeProbe is the crash-resume probe result for one job: the content
// address of the job's full-run cache entry when one exists, plus every
// cached partial-range entry — all keyed with this process's own binary
// fingerprint, which is exactly why the probe runs on the worker (over
// locd's POST /v1/cache/ranges) rather than on the coordinator, whose
// binary hashes differently.
type RangeProbe struct {
	// Trials is the job's effective full trial count [0, Trials) — the
	// space the coordinator must cover.
	Trials int `json:"trials"`
	// Full is the hash of the full-run entry, empty when only partials (or
	// nothing) are cached.
	Full string `json:"full,omitempty"`
	// Ranges are the cached partial executions, sorted by Lo then
	// wider-first.
	Ranges []cache.RangeEntry `json:"ranges,omitempty"`
}

// RangeEntries probes the session's cache for results a previous run of sp
// (or its sub-ranges) already banked. The spec must describe the full job:
// a spec carrying its own trial range has nothing to resume. A session
// without a cache answers with no entries rather than an error.
func (s *Session) RangeEntries(sp spec.JobSpec) (RangeProbe, error) {
	if sp.TrialRange != nil {
		return RangeProbe{}, fmt.Errorf("run: range probe wants the full job, not sub-range [%d, %d)",
			sp.TrialRange.Lo, sp.TrialRange.Hi)
	}
	job, err := spec.Resolve(sp)
	if err != nil {
		return RangeProbe{}, err
	}
	// Re-derive the effective trials/shard size exactly as execution does —
	// through the session's runner config — so probe keys and execution keys
	// are the same bytes by construction.
	runner, err := engine.NewRunner(engine.Config{
		Workers:   s.opts.Workers,
		Trials:    job.Spec.Trials,
		Seed:      job.Spec.Seed,
		ShardSize: job.Spec.ShardSize,
	})
	if err != nil {
		return RangeProbe{}, err
	}
	trials, shardSize := engine.CampaignConfig(runner, job.Campaign)
	probe := RangeProbe{Trials: trials}
	if s.cache == nil {
		return probe, nil
	}
	base := jobCacheKey(job, trials, shardSize)
	// Full runs never cache retained values, so the full key carries no
	// retention flag; partials key it from the campaign's effective
	// retention (see executeResolved).
	if !job.Spec.KeepTrialValues {
		hash := base.Hash()
		if _, ok, err := s.cache.EntryByHash(hash); err == nil && ok {
			probe.Full = hash
		}
	}
	partial := base
	partial.Retained = job.Campaign.KeepTrialValues
	ranges, err := s.cache.RangeEntries(partial)
	if err != nil {
		return probe, err
	}
	probe.Ranges = ranges
	return probe, nil
}

// Info describes how one job execution was satisfied.
type Info struct {
	// Cached reports that the result came from the cache with no trial
	// computation — a full-key hit, or a plan whose cached ranges covered
	// the whole trial space.
	Cached bool
	// Trials is the effective trial count of the (possibly skipped) run.
	Trials int
	// ReusedTrials counts trials the prefix-reuse planner satisfied from
	// cached range entries instead of recomputing. Zero for full-key cache
	// hits (nothing was planned) and for cold runs. Distinct from the
	// coordinator's resumed-trial counter: resume replays this job's own
	// interrupted ranges, reuse extends a different (typically smaller)
	// run's surviving ranges.
	ReusedTrials int
	// Elapsed is the wall time of this execution, including cache lookup.
	Elapsed time.Duration
	// CacheKey is the content address the result is (or would be) cached
	// under — fetchable via locd's /v1/cache/{key}. Empty when the session
	// runs without a cache.
	CacheKey string
}

// lockKey serializes cache access per key hash; the returned function
// releases the lock.
func (s *Session) lockKey(hash string) func() {
	s.keyMu.Lock()
	m, ok := s.keyLocks[hash]
	if !ok {
		m = &sync.Mutex{}
		s.keyLocks[hash] = m
	}
	s.keyMu.Unlock()
	m.Lock()
	return m.Unlock
}

// progressCallback fans one job's trial counters out to the rendered
// progress sink (keyed by job id, labeled by campaign name) and the
// job-keyed OnProgress hook.
func (s *Session) progressCallback(name, jobID string) func(done, total int) {
	cb := s.prog.callback(jobID, name)
	op := s.opts.OnProgress
	if op == nil {
		return cb
	}
	return func(done, total int) {
		if cb != nil {
			cb(done, total)
		}
		s.opMu.Lock()
		op(jobID, done, total)
		s.opMu.Unlock()
	}
}

// ExecuteSpec resolves and executes one job description through the
// session: a cache hit returns the stored result with zero trial
// computation, and a miss runs the campaign on the engine and stores the
// result. Execution metadata (worker count, wall time) is normalized out of
// cached values and stamped with this invocation's actual values, so a hit
// reports zero workers and its own lookup time, never the populating run's.
// Safe for concurrent calls on one session.
func ExecuteSpec(s *Session, sp spec.JobSpec) (*spec.Value, Info, error) {
	return ExecuteSpecContext(context.Background(), s, sp)
}

// ExecuteSpecContext is ExecuteSpec with an observability context: the job's
// run.job span — and the engine spans beneath it — land in the context's
// tracer, if any. The context never cancels execution.
func ExecuteSpecContext(ctx context.Context, s *Session, sp spec.JobSpec) (*spec.Value, Info, error) {
	if sp.AutoTrials != nil {
		// An auto spec is a driving recipe, not one job: peel the rule off
		// and run the CI-driven round sequence (spec.Resolve rejects auto
		// specs precisely so no other path treats them as a single job).
		if err := sp.Validate(); err != nil {
			return nil, Info{}, err
		}
		return executeAuto(ctx, s, sp)
	}
	job, err := spec.Resolve(sp)
	if err != nil {
		return nil, Info{}, err
	}
	return ExecuteResolvedContext(ctx, s, job)
}

// ExecuteResolved executes one already-resolved job; see ExecuteSpec.
func ExecuteResolved(s *Session, job spec.Resolved) (*spec.Value, Info, error) {
	return ExecuteResolvedContext(context.Background(), s, job)
}

// ExecuteResolvedContext is ExecuteResolved with an observability context;
// see ExecuteSpecContext.
func ExecuteResolvedContext(ctx context.Context, s *Session, job spec.Resolved) (*spec.Value, Info, error) {
	obsInflight.Add(1)
	defer obsInflight.Add(-1)
	res, info, err := executeResolved(ctx, s, job)
	obsJobs.Inc()
	obsJobSec.Observe(info.Elapsed.Seconds())
	switch {
	case err != nil:
		obsJobsFailed.Inc()
	case info.Cached:
		obsJobsCached.Inc()
	}
	return res, info, err
}

func executeResolved(ctx context.Context, s *Session, job spec.Resolved) (*spec.Value, Info, error) {
	start := time.Now()
	c := job.Campaign
	name := c.Scenario.Name
	jobID := job.Spec.Hash()
	ctx, jobSpan := obs.Start(ctx, "run.job")
	if jobSpan != nil {
		jobSpan.SetAttr("job", jobID).SetAttr("scenario", name).SetAttr("kind", job.Spec.Kind)
	}
	defer jobSpan.End()
	runner, err := engine.NewRunner(engine.Config{
		Workers:   s.opts.Workers,
		Trials:    job.Spec.Trials,
		Seed:      job.Spec.Seed,
		ShardSize: job.Spec.ShardSize,
		Progress:  s.progressCallback(name, jobID),
		Budget:    engine.SharedBudget(),
	})
	if err != nil {
		return nil, Info{}, err
	}
	defer s.prog.done(jobID)
	trials, shardSize := engine.CampaignConfig(runner, c)
	// A proper trial sub-range executes partially: the result is the
	// range's serialized shard aggregates (spec.Value.Partial), not a
	// finalized figure or report — finalizing needs the full merged run,
	// which only the coordinator holds.
	var rng *spec.Range
	if r := job.Spec.TrialRange; r != nil && !(r.Lo == 0 && r.Hi == trials) {
		if r.Hi > trials {
			return nil, Info{}, fmt.Errorf("run: %s: trial range [%d, %d) exceeds the job's %d trials",
				name, r.Lo, r.Hi, trials)
		}
		rng = r
	}
	runTrials := trials
	if rng != nil {
		runTrials = rng.Hi - rng.Lo
	}
	// Retention jobs bypass the cache entirely: per-trial values are
	// excluded from the stored JSON, so a hit could only ever return a
	// result stripped of exactly what the spec asked for. Partial jobs are
	// exempt — an engine.Partial serializes its retained values.
	cacheable := s.cache != nil && (!job.Spec.KeepTrialValues || rng != nil)
	var key cache.Key
	var keyHash string
	if cacheable {
		// The key (and the whole-binary fingerprint it embeds) is only
		// worth computing when a cache exists to consult.
		key = jobCacheKey(job, trials, shardSize)
		if rng != nil {
			key.RangeLo, key.RangeHi = rng.Lo, rng.Hi
			// Retained and unretained partials of one range store different
			// aggregates, so retention keys separately (the campaign's
			// effective retention, covering both figure pins and the spec's
			// keep_trial_values).
			key.Retained = c.KeepTrialValues
		}
		keyHash = key.Hash()
		unlock := s.lockKey(keyHash)
		defer unlock()
		var res spec.Value
		hit, err := s.cache.Get(key, &res)
		if err != nil {
			// The entry parsed but its value no longer decodes into a
			// result: recoverable (we recompute and overwrite it below), but
			// worth one trace instead of a silent recompute.
			fmt.Fprintf(s.warn, "warning: %s: discarding undecodable cache entry: %v\n", name, err)
		}
		if hit && (rng == nil) != (res.Partial == nil) {
			// The entry's shape does not match the job's (a full result
			// under a partial key or vice versa): recompute and overwrite.
			hit = false
		}
		if hit {
			if jobSpan != nil {
				jobSpan.SetAttr("cached", true)
			}
			res.SetExecutionMeta(0, time.Since(start).Seconds())
			return &res, Info{Cached: true, Trials: runTrials, Elapsed: time.Since(start), CacheKey: keyHash}, nil
		}
		if rng == nil && !c.KeepTrialValues && !s.opts.NoReuse {
			// Full-key miss on an unretained full run: hand the job to the
			// prefix-reuse planner, which extends surviving range entries and
			// computes only the gaps (all of [0, trials) when nothing
			// survives — the cold run then banks its own range entry for the
			// next extension). Campaigns with effective retention (figure
			// pins) stay on the classic path: their range entries key
			// Retained=true and drag per-trial values through every plan, a
			// cost/benefit that only makes sense for the coordinator's
			// distributed splits.
			return s.executePlanned(ctx, jobSpan, job, key, keyHash, trials, shardSize, start)
		}
	}
	var res *spec.Value
	if rng != nil {
		if jobSpan != nil {
			jobSpan.SetAttr("range_lo", rng.Lo).SetAttr("range_hi", rng.Hi)
		}
		partial, err := engine.RunCampaignPartialContext(ctx, runner, c, rng.Lo, rng.Hi)
		if err != nil {
			return nil, Info{}, err
		}
		res = &spec.Value{Partial: partial}
		s.mu.Lock()
		s.trialsExecuted += runTrials
		s.mu.Unlock()
		if cacheable {
			_ = s.cache.Put(key, res)
		}
		return res, Info{Trials: runTrials, Elapsed: time.Since(start), CacheKey: keyHash}, nil
	}
	var rep *engine.Report
	res, rep, err = engine.RunCampaignContext(ctx, runner, c)
	if err != nil {
		return nil, Info{}, err
	}
	s.mu.Lock()
	s.trialsExecuted += rep.Trials
	s.mu.Unlock()
	if cacheable {
		// Best-effort: a full disk or unwritable directory must not fail
		// the run whose result we already hold. Execution metadata is
		// cleared for the stored copy and restored on the returned one
		// (res.Report may alias rep, so capture the values first).
		workers, elapsed := rep.Workers, rep.ElapsedSeconds
		res.ClearExecutionMeta()
		_ = s.cache.Put(key, res)
		res.SetExecutionMeta(workers, elapsed)
	}
	return res, Info{Trials: rep.Trials, Elapsed: time.Since(start), CacheKey: keyHash}, nil
}

// Outcome is one job's result in a suite run.
type Outcome struct {
	// Spec identifies the job; Spec.ID is its display name and Spec.Hash()
	// its wire address.
	Spec   spec.JobSpec
	Result *spec.Value
	Info   Info
	Err    error
}

// ErrSkipped marks a job that never started because another job in the
// suite failed. With largest-first dispatch a skipped job may precede a
// genuine failure in submission order, so suite consumers looking for the
// suite's real error must skip ErrSkipped outcomes (errors.Is) — at least
// one non-skipped failure always exists when any job is skipped (more than
// one when several in-flight jobs fail concurrently).
var ErrSkipped = errors.New("run: skipped after suite failure")

// dispatchOrder returns the order the scheduler starts jobs in when
// overlapping: largest first — by trials × shard count, so campaigns with
// many individually heavy trials (which pin shard size 1) rank above
// campaigns with the same trial count in big shards — with submission order
// breaking ties. Starting the longest jobs first shortens the suite's
// critical path; emission order is unaffected.
func dispatchOrder(jobs []spec.Resolved) []int {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	cost := func(j spec.Resolved) int { return j.Trials * j.Shards() }
	sort.SliceStable(order, func(a, b int) bool { return cost(jobs[order[a]]) > cost(jobs[order[b]]) })
	return order
}

// ExecuteAll is the suite scheduler: it runs the jobs through the session,
// overlapping up to Options.SuiteParallel independent campaigns (0 means
// GOMAXPROCS) on top of the engine's trial-level parallelism, with all
// campaigns drawing shard slots from the shared worker budget. When
// overlapping, jobs are dispatched largest-first (see dispatchOrder) so the
// longest campaigns anchor the critical path instead of straggling at the
// end. A failing job stops the suite: no further job starts (campaigns
// already in flight finish and report), and never-started jobs carry
// ErrSkipped — every submitted job always receives exactly one outcome.
//
// The returned slice is in submission order, and onDone (when non-nil) is
// invoked exactly once per job in submission order — job i only after jobs
// 0..i-1 — so streaming output is identical at every overlap factor and
// dispatch order. The engine's determinism contract makes each campaign's
// result byte-identical regardless of overlap. While onDone runs, the TTY
// progress block is suspended so the callback can print without the next
// repaint erasing its output.
func ExecuteAll(s *Session, jobs []spec.Resolved, onDone func(Outcome)) []Outcome {
	return executeAll(context.Background(), s, jobs, onDone, true)
}

// ExecuteAllContext is ExecuteAll with an observability context: each job
// records a run.queued span (submission to dispatch) and a run.job span (the
// execution itself) in the context's tracer, if any.
func ExecuteAllContext(ctx context.Context, s *Session, jobs []spec.Resolved, onDone func(Outcome)) []Outcome {
	return executeAll(ctx, s, jobs, onDone, true)
}

// ExecuteAllUnordered is ExecuteAll with per-job completion latency instead
// of ordered streaming: onDone fires (serialized) as soon as each job
// finishes, regardless of its position in the submission. Services that
// answer polls per job (locd) use this so a fast or cached job is never
// held hostage by a long-running sibling; CLIs that stream suite output
// keep ExecuteAll's ordered emission.
func ExecuteAllUnordered(s *Session, jobs []spec.Resolved, onDone func(Outcome)) []Outcome {
	return executeAll(context.Background(), s, jobs, onDone, false)
}

// ExecuteAllUnorderedContext is ExecuteAllUnordered with an observability
// context; see ExecuteAllContext.
func ExecuteAllUnorderedContext(ctx context.Context, s *Session, jobs []spec.Resolved, onDone func(Outcome)) []Outcome {
	return executeAll(ctx, s, jobs, onDone, false)
}

func executeAll(ctx context.Context, s *Session, jobs []spec.Resolved, onDone func(Outcome), ordered bool) []Outcome {
	overlap := s.opts.SuiteParallel
	if overlap <= 0 {
		overlap = runtime.GOMAXPROCS(0)
	}
	if overlap > len(jobs) {
		overlap = len(jobs)
	}
	// Every submitted job is queued until the scheduler dispatches it (or
	// marks it skipped): run_jobs_queued is the health endpoint's queue-depth
	// reading, and each job's run.queued span records its time in line.
	queued := make([]*obs.Span, len(jobs))
	for i := range jobs {
		_, qs := obs.Start(ctx, "run.queued")
		if qs != nil {
			qs.SetAttr("job", jobs[i].Spec.Hash()).SetAttr("name", jobs[i].Spec.ID)
		}
		queued[i] = qs
	}
	obsQueued.Add(int64(len(jobs)))
	dequeue := func(i int, skipped bool) {
		if queued[i] != nil && skipped {
			queued[i].SetAttr("skipped", true)
		}
		queued[i].End()
		obsQueued.Add(-1)
	}
	outcomes := make([]Outcome, len(jobs))
	report := func(o Outcome) {
		if onDone == nil {
			return
		}
		s.prog.suspend()
		onDone(o)
		s.prog.resume()
	}
	if overlap <= 1 {
		var failedSeq bool
		for i, j := range jobs {
			if failedSeq {
				// Fail-fast, but still give every job its outcome — a
				// service keyed on per-job completion must never see a job
				// silently dropped from its batch.
				dequeue(i, true)
				outcomes[i] = Outcome{Spec: j.Spec, Err: ErrSkipped}
			} else {
				dequeue(i, false)
				outcomes[i] = runResolved(ctx, s, j)
				failedSeq = outcomes[i].Err != nil
			}
			report(outcomes[i])
		}
		return outcomes
	}
	var (
		mu     sync.Mutex
		ready  = make([]bool, len(jobs))
		next   int
		wg     sync.WaitGroup
		idx    = make(chan int)
		failed atomic.Bool
	)
	emit := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		if !ordered {
			report(outcomes[i])
			return
		}
		ready[i] = true
		for next < len(jobs) && ready[next] {
			report(outcomes[next])
			next++
		}
	}
	for w := 0; w < overlap; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Re-check on receipt: the dispatcher may have been blocked
				// handing this index over while another job failed.
				if failed.Load() {
					dequeue(i, true)
					outcomes[i] = Outcome{Spec: jobs[i].Spec, Err: ErrSkipped}
				} else {
					dequeue(i, false)
					if outcomes[i] = runResolved(ctx, s, jobs[i]); outcomes[i].Err != nil {
						failed.Store(true)
					}
				}
				emit(i)
			}
		}()
	}
	order := dispatchOrder(jobs)
	for k := 0; k < len(order); k++ {
		if failed.Load() {
			// Don't start anything new; jobs already handed out finish and
			// report, the rest are marked skipped. Emission stays in
			// submission order, so a skipped job whose submission index is
			// below the failing job's is reported first — which is why
			// ErrSkipped documents that consumers must not treat it as the
			// suite's genuine failure.
			for _, i := range order[k:] {
				dequeue(i, true)
				outcomes[i] = Outcome{Spec: jobs[i].Spec, Err: ErrSkipped}
				emit(i)
			}
			break
		}
		idx <- order[k]
	}
	close(idx)
	wg.Wait()
	return outcomes
}

func runResolved(ctx context.Context, s *Session, j spec.Resolved) Outcome {
	res, info, err := ExecuteResolvedContext(ctx, s, j)
	return Outcome{Spec: j.Spec, Result: res, Info: info, Err: err}
}
