// Package run is the unified campaign runner shared by cmd/experiments and
// cmd/scenarios: one place for the common CLI flags, the on-disk result
// cache, streaming trial progress, and campaign execution. Both CLIs build
// engine Campaigns (figure reproductions as Campaign[*experiments.Result],
// library scenarios via engine.ReportCampaign) and hand them to Execute; the
// session decides whether the cache already holds the answer.
//
// Suites of independent campaigns run through ExecuteAll, which overlaps up
// to Options.SuiteParallel campaigns on top of the engine's trial-level
// parallelism. Every campaign draws its shard slots from the process-wide
// engine.SharedBudget, so overlapped campaigns share GOMAXPROCS instead of
// multiplying worker pools — and because shard partitions and merges are
// scheduling-independent, results are byte-identical at every overlap
// factor.
package run

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/cache"
)

// Opportunistic cache-GC policy: at most one sweep per hour per directory,
// evicting entries untouched for 30 days (long-dead binary fingerprints)
// or, oldest first, beyond a 512 MiB total.
const (
	gcInterval = time.Hour
	gcMaxAge   = 30 * 24 * time.Hour
	gcMaxBytes = 512 << 20
)

// Options carries the execution parameters common to every campaign CLI.
type Options struct {
	// Trials overrides each scenario's default trial count when positive.
	Trials int
	// Workers is the engine worker-pool size (0 = GOMAXPROCS). Regardless
	// of its value, concurrent shard execution is bounded by the shared
	// worker budget (engine.SharedBudget), sized to GOMAXPROCS.
	Workers int
	// Seed is the base seed; all runs are deterministic per seed.
	Seed int64
	// ShardSize overrides the engine's default shard partition when
	// positive. Aggregates are a pure function of (seed, trials, shard
	// size), so it is part of every cache key.
	ShardSize int
	// SuiteParallel is how many independent campaigns ExecuteAll overlaps:
	// 1 (the default when registered as a flag) runs them sequentially,
	// 0 means GOMAXPROCS. Per-campaign results are identical at any value.
	SuiteParallel int
	// CacheDir is the result-cache directory; empty selects DefaultCacheDir.
	CacheDir string
	// NoCache disables the result cache entirely.
	NoCache bool
	// CacheGC controls the opportunistic cache sweep NewSession runs:
	// "" or "on" enables it, "off" disables it.
	CacheGC string
	// Progress, when non-nil, receives streaming trials-completed updates
	// for each campaign as its shards finish: an in-place status block on a
	// terminal, newline-delimited milestone lines elsewhere.
	Progress io.Writer
	// Warnings receives non-fatal diagnostics (e.g. a cache entry that no
	// longer decodes); nil means os.Stderr.
	Warnings io.Writer
}

// RegisterCommon registers the flags shared by every campaign CLI:
// -parallel, -seed, -cache, -no-cache, -cache-gc. Flags whose applicability
// varies (like -trials) have their own Register helpers.
func (o *Options) RegisterCommon(fs *flag.FlagSet) {
	fs.IntVar(&o.Workers, "parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
	fs.Int64Var(&o.Seed, "seed", 1, "base random seed (runs are deterministic per seed)")
	fs.StringVar(&o.CacheDir, "cache", "", "result cache directory (default: the per-user cache dir)")
	fs.BoolVar(&o.NoCache, "no-cache", false, "disable the on-disk result cache")
	fs.StringVar(&o.CacheGC, "cache-gc", "on", "opportunistic cache garbage collection (on|off)")
}

// RegisterTrials registers the -trials override. Scenario CLIs expose it;
// the figure CLI does not, because a figure's trial structure is part of its
// definition.
func (o *Options) RegisterTrials(fs *flag.FlagSet) {
	fs.IntVar(&o.Trials, "trials", 0, "override each scenario's default trial count")
}

// RegisterShardSize registers the -shard-size override. It pairs with
// RegisterTrials on scenario CLIs; figure campaigns pin their own shard
// partitions, so the figure CLI registers neither.
func (o *Options) RegisterShardSize(fs *flag.FlagSet) {
	fs.IntVar(&o.ShardSize, "shard-size", 0, "trials per aggregation shard (0 = engine default)")
}

// RegisterSuiteParallel registers the -suite-parallel overlap factor for
// CLIs that run whole suites.
func (o *Options) RegisterSuiteParallel(fs *flag.FlagSet) {
	fs.IntVar(&o.SuiteParallel, "suite-parallel", 1,
		"independent campaigns to overlap in suite runs (0 = GOMAXPROCS, 1 = sequential; results are identical at any value)")
}

// DefaultCacheDir returns the per-user cache directory, or "" when the
// platform provides none (caching is then disabled rather than failing).
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "resilientloc")
}

// Session executes campaigns under one set of Options, tracking cache use
// and the number of trials actually computed. A session is safe for
// concurrent Execute calls; ExecuteAll is its suite scheduler.
type Session struct {
	opts  Options
	cache *cache.Cache
	warn  io.Writer
	prog  *progress

	mu             sync.Mutex
	trialsExecuted int

	// keyLocks serializes cache Get→compute→Put per cache key, so a suite
	// that schedules the same campaign twice computes it once and hands the
	// second execution a cache hit instead of racing on the entry.
	keyMu    sync.Mutex
	keyLocks map[string]*sync.Mutex
}

// NewSession validates the options and opens the result cache (unless
// disabled), sweeping old cache entries opportunistically (unless
// CacheGC is "off"). An unusable default cache directory degrades to
// cache-off; an explicitly requested directory that cannot be opened is an
// error.
func NewSession(opts Options) (*Session, error) {
	if opts.SuiteParallel < 0 {
		return nil, fmt.Errorf("run: negative suite parallelism %d", opts.SuiteParallel)
	}
	gc := true
	switch opts.CacheGC {
	case "", "on":
	case "off":
		gc = false
	default:
		return nil, fmt.Errorf("run: invalid -cache-gc value %q (want on or off)", opts.CacheGC)
	}
	if opts.Warnings == nil {
		opts.Warnings = os.Stderr
	}
	s := &Session{
		opts:     opts,
		warn:     opts.Warnings,
		prog:     newProgress(opts.Progress),
		keyLocks: make(map[string]*sync.Mutex),
	}
	// Validate the engine configuration eagerly so flag errors surface
	// before any campaign runs.
	if _, err := engine.NewRunner(s.engineConfig(nil)); err != nil {
		return nil, err
	}
	if opts.NoCache {
		return s, nil
	}
	dir := opts.CacheDir
	explicit := dir != ""
	if !explicit {
		dir = DefaultCacheDir()
		if dir == "" {
			return s, nil
		}
	}
	c, err := cache.Open(dir)
	if err != nil {
		if explicit {
			return nil, err
		}
		return s, nil
	}
	s.cache = c
	if gc {
		// Best-effort: a failed sweep must not block the run.
		_, _, _ = c.MaybeGC(gcInterval, gcMaxAge, gcMaxBytes)
	}
	return s, nil
}

// TrialsExecuted reports how many trials this session actually computed;
// cache hits contribute zero.
func (s *Session) TrialsExecuted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trialsExecuted
}

// CacheDir returns the directory of the session's cache, or "" when caching
// is off.
func (s *Session) CacheDir() string {
	if s.cache == nil {
		return ""
	}
	return s.cache.Dir()
}

// Info describes how one campaign execution was satisfied.
type Info struct {
	// Cached reports that the result came from the cache with no trial
	// computation.
	Cached bool
	// Trials is the effective trial count of the (possibly skipped) run.
	Trials int
	// Elapsed is the wall time of this execution, including cache lookup.
	Elapsed time.Duration
}

func (s *Session) engineConfig(progress func(done, total int)) engine.Config {
	return engine.Config{
		Workers:   s.opts.Workers,
		Trials:    s.opts.Trials,
		Seed:      s.opts.Seed,
		ShardSize: s.opts.ShardSize,
		Progress:  progress,
		Budget:    engine.SharedBudget(),
	}
}

// lockKey serializes cache access per key hash; the returned function
// releases the lock.
func (s *Session) lockKey(hash string) func() {
	s.keyMu.Lock()
	m, ok := s.keyLocks[hash]
	if !ok {
		m = &sync.Mutex{}
		s.keyLocks[hash] = m
	}
	s.keyMu.Unlock()
	m.Lock()
	return m.Unlock
}

// executionMeta is implemented by results (engine.Report) that carry
// per-invocation execution metadata — worker count and wall time — which
// must never be cached and replayed as if it described a later run.
type executionMeta interface {
	ClearExecutionMeta()
	SetExecutionMeta(workers int, elapsedSeconds float64)
}

// Execute runs one campaign through the session: build is invoked with the
// session's seed (so a campaign can never be computed for one seed and
// cached under another), then a cache hit returns the stored result with
// zero trial computation, and a miss runs the campaign on the engine and
// stores the result. Execution metadata (worker count, wall time) is
// normalized out of cached values and stamped with this invocation's actual
// values, so a hit reports zero workers and its own lookup time, never the
// populating run's. Safe for concurrent calls on one session.
func Execute[R any](s *Session, build func(seed int64) engine.Campaign[R]) (R, Info, error) {
	var zero R
	start := time.Now()
	c := build(s.opts.Seed)
	name := c.Scenario.Name
	runner, err := engine.NewRunner(s.engineConfig(s.prog.callback(name)))
	if err != nil {
		return zero, Info{}, err
	}
	defer s.prog.done(name)
	trials, shardSize := engine.CampaignConfig(runner, c)
	var key cache.Key
	if s.cache != nil {
		// The key (and the whole-binary fingerprint it embeds) is only
		// worth computing when a cache exists to consult.
		key = cache.Key{
			Scenario:    name,
			Seed:        s.opts.Seed,
			Trials:      trials,
			ShardSize:   shardSize,
			Fingerprint: cache.Fingerprint(),
		}
		unlock := s.lockKey(key.Hash())
		defer unlock()
		var res R
		hit, err := s.cache.Get(key, &res)
		if err != nil {
			// The entry parsed but its value no longer decodes into R:
			// recoverable (we recompute and overwrite it below), but worth
			// one trace instead of a silent recompute.
			fmt.Fprintf(s.warn, "warning: %s: discarding undecodable cache entry: %v\n", name, err)
		}
		if hit {
			if m, ok := any(res).(executionMeta); ok {
				m.SetExecutionMeta(0, time.Since(start).Seconds())
			}
			return res, Info{Cached: true, Trials: trials, Elapsed: time.Since(start)}, nil
		}
	}
	res, rep, err := engine.RunCampaign(runner, c)
	if err != nil {
		return zero, Info{}, err
	}
	s.mu.Lock()
	s.trialsExecuted += rep.Trials
	s.mu.Unlock()
	if s.cache != nil {
		// Best-effort: a full disk or unwritable directory must not fail
		// the run whose result we already hold. Execution metadata is
		// cleared for the stored copy and restored on the returned one.
		if m, ok := any(res).(executionMeta); ok {
			// res may alias rep (scenario campaigns), so capture the
			// values before clearing them for the stored copy.
			workers, elapsed := rep.Workers, rep.ElapsedSeconds
			m.ClearExecutionMeta()
			_ = s.cache.Put(key, res)
			m.SetExecutionMeta(workers, elapsed)
		} else {
			_ = s.cache.Put(key, res)
		}
	}
	return res, Info{Trials: rep.Trials, Elapsed: time.Since(start)}, nil
}

// ExecuteScenario runs a library scenario through the session as a report
// campaign (scenarios take their seed from the engine configuration, so the
// builder is seed-independent).
func ExecuteScenario(s *Session, sc engine.Scenario) (*engine.Report, Info, error) {
	return Execute(s, func(int64) engine.Campaign[*engine.Report] { return engine.ReportCampaign(sc) })
}

// Job is one named campaign in a suite run.
type Job[R any] struct {
	// Name labels the job in Outcomes; by convention it matches the
	// campaign scenario's name (experiment ID or library scenario name).
	Name string
	// Build constructs the campaign for a seed, exactly as for Execute.
	Build func(seed int64) engine.Campaign[R]
}

// Outcome is one job's result.
type Outcome[R any] struct {
	Name   string
	Result R
	Info   Info
	Err    error
}

// ErrSkipped marks a job that never started because an earlier job in the
// suite failed. Ordered emission guarantees a skipped job is always
// reported after the genuine failure that caused it.
var ErrSkipped = errors.New("run: skipped after earlier suite failure")

// ExecuteAll is the suite scheduler: it runs the jobs through the session,
// overlapping up to Options.SuiteParallel independent campaigns (0 means
// GOMAXPROCS) on top of the engine's trial-level parallelism, with all
// campaigns drawing shard slots from the shared worker budget. A failing
// job stops the suite: no further job starts (campaigns already in flight
// finish and report), and never-started jobs carry ErrSkipped.
//
// The returned slice is in job order (truncated at the failure when running
// sequentially), and onDone (when non-nil) is invoked exactly once per
// reported job in job order — job i only after jobs 0..i-1 — so streaming
// output is identical at every overlap factor. The engine's determinism
// contract makes each campaign's result byte-identical regardless of
// overlap. While onDone runs, the TTY progress block is suspended so the
// callback can print without the next repaint erasing its output.
func ExecuteAll[R any](s *Session, jobs []Job[R], onDone func(Outcome[R])) []Outcome[R] {
	overlap := s.opts.SuiteParallel
	if overlap <= 0 {
		overlap = runtime.GOMAXPROCS(0)
	}
	if overlap > len(jobs) {
		overlap = len(jobs)
	}
	outcomes := make([]Outcome[R], len(jobs))
	report := func(o Outcome[R]) {
		if onDone == nil {
			return
		}
		s.prog.suspend()
		onDone(o)
		s.prog.resume()
	}
	if overlap <= 1 {
		for i, j := range jobs {
			outcomes[i] = runJob(s, j)
			report(outcomes[i])
			if outcomes[i].Err != nil {
				return outcomes[:i+1]
			}
		}
		return outcomes
	}
	var (
		mu     sync.Mutex
		ready  = make([]bool, len(jobs))
		next   int
		wg     sync.WaitGroup
		idx    = make(chan int)
		failed atomic.Bool
	)
	emit := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		ready[i] = true
		for next < len(jobs) && ready[next] {
			report(outcomes[next])
			next++
		}
	}
	for w := 0; w < overlap; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Re-check on receipt: the dispatcher may have been blocked
				// handing this index over while another job failed.
				if failed.Load() {
					outcomes[i] = Outcome[R]{Name: jobs[i].Name, Err: ErrSkipped}
				} else if outcomes[i] = runJob(s, jobs[i]); outcomes[i].Err != nil {
					failed.Store(true)
				}
				emit(i)
			}
		}()
	}
	for i := 0; i < len(jobs); i++ {
		if failed.Load() {
			// Don't start anything new; jobs already handed out finish and
			// report, the rest are marked skipped (their indices are all
			// above the failed job's, so ordered emission reports the real
			// failure first).
			for j := i; j < len(jobs); j++ {
				outcomes[j] = Outcome[R]{Name: jobs[j].Name, Err: ErrSkipped}
				emit(j)
			}
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	return outcomes
}

func runJob[R any](s *Session, j Job[R]) Outcome[R] {
	res, info, err := Execute(s, j.Build)
	return Outcome[R]{Name: j.Name, Result: res, Info: info, Err: err}
}
