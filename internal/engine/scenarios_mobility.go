package engine

import (
	"fmt"
	"math"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/core"
	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
	"resilientloc/internal/ranging"
)

// This file holds the workloads that exist only as parameterized factories —
// operating points the compiled-in library never reached. They are built via
// BuildScenario (see factory.go) from a job spec's params, never registered
// in Suites(): every instance shares one scenario name and the params on the
// cache key tell the operating points apart.

// MobilityWaypoint is town multilateration under random-waypoint motion: the
// paper's measurement model assumes nodes hold still for a whole ranging
// epoch, and this workload quantifies what breaks when they don't. Each
// trial draws a fresh town; every non-anchor node picks a random waypoint
// inside the deployment's bounding box and walks toward it at speedMps,
// stopping on arrival. Each pair is measured once at its own random instant
// within the epochS-second epoch — so the two endpoints of different
// measurements are captured at mutually inconsistent positions — and the
// solver's output is scored against the mid-epoch ground truth. At speed 0
// this degenerates to the static town scenario; as speed grows the
// measurement set becomes self-inconsistent and error rises.
func MobilityWaypoint(speedMps, epochS float64) Scenario {
	return Scenario{
		Name: "mobility-waypoint",
		Description: fmt.Sprintf(
			"town multilateration under random-waypoint motion, %g m/s over a %g s epoch", speedMps, epochS),
		Trials: 8,
		Run: func(t *T) error {
			dep := deploy.Town(t.RNG)
			// Bounding box of the deployment: waypoints stay inside it so
			// motion never drags the network apart.
			minP := dep.Positions[0]
			maxP := dep.Positions[0]
			for _, p := range dep.Positions {
				minP.X = math.Min(minP.X, p.X)
				minP.Y = math.Min(minP.Y, p.Y)
				maxP.X = math.Max(maxP.X, p.X)
				maxP.Y = math.Max(maxP.Y, p.Y)
			}
			// Per-node waypoints, drawn in node order. Anchors are mounted
			// infrastructure and stay put; their waypoint is their position.
			waypoints := make([]geom.Point, dep.N())
			for i := range waypoints {
				if dep.IsAnchor(i) {
					waypoints[i] = dep.Positions[i]
					continue
				}
				waypoints[i] = geom.Pt(
					minP.X+t.RNG.Float64()*(maxP.X-minP.X),
					minP.Y+t.RNG.Float64()*(maxP.Y-minP.Y))
			}
			posAt := func(i int, tau float64) geom.Point {
				to := waypoints[i].Sub(dep.Positions[i])
				dist := to.Norm()
				travel := speedMps * tau
				if travel >= dist || dist == 0 {
					return waypoints[i]
				}
				return dep.Positions[i].Add(to.Scale(travel / dist))
			}
			set, err := measure.NewSet(dep.N())
			if err != nil {
				return err
			}
			pairs := 0
			for i := 0; i < dep.N(); i++ {
				for j := i + 1; j < dep.N(); j++ {
					// Each pair ranges at its own instant of the epoch: the
					// positions that produced measurement (i,j) need not
					// agree with those behind (i,k).
					tau := t.RNG.Float64() * epochS
					d := posAt(i, tau).Dist(posAt(j, tau))
					if d > 22 {
						continue
					}
					meas := d + t.RNG.NormFloat64()*measure.GaussianNoise
					if meas <= 0.01 {
						meas = 0.01
					}
					if err := set.Add(i, j, meas, 1); err != nil {
						return err
					}
					pairs++
				}
			}
			anchors := make(map[int]geom.Point, len(dep.Anchors))
			for _, a := range dep.Anchors {
				anchors[a] = dep.Positions[a]
			}
			res, err := core.SolveMultilaterationIn(t.Scratch(), set, anchors, core.DefaultMultilatConfig())
			if err != nil {
				return err
			}
			// Ground truth is the mid-epoch snapshot — the best single-instant
			// answer a static solver could be asked for.
			truth := make([]geom.Point, dep.N())
			for i := range truth {
				truth[i] = posAt(i, epochS/2)
			}
			t.Record("pairs", float64(pairs))
			t.Record("localized_frac", float64(len(res.Localized))/float64(dep.N()-len(dep.Anchors)))
			if len(res.Localized) > 0 {
				avg, worst, err := eval.AvgErrorAbsolute(res.Positions, truth)
				if err != nil {
					return err
				}
				t.Record("avg_error_m", avg)
				t.Record("worst_error_m", worst)
			}
			return nil
		},
	}
}

// MixedEnvRanging ranges a grid deployment that straddles two acoustic
// environments — e.g. a lawn meeting a parking lot — which the paper's
// single-environment campaigns cannot express. The 48-node offset grid is
// split at boundaryFrac of its width: pairs whose midpoint falls left of the
// boundary propagate under envA, the rest under envB, and the pooled
// readings are scored exactly like the single-environment campaigns.
func MixedEnvRanging(envA, envB acoustics.Environment, boundaryFrac float64) Scenario {
	return Scenario{
		Name: "ranging-mixed-env",
		Description: fmt.Sprintf(
			"refined ranging on a 48-node grid straddling %s and %s at %g of its width",
			envA.Name, envB.Name, boundaryFrac),
		Trials: 8,
		Run: func(t *T) error {
			dep, err := deploy.OffsetGrid(6, 8, 9, 10)
			if err != nil {
				return err
			}
			// One service per environment over the same deployment, built in
			// a fixed order so the RNG stream is deterministic. Each carries
			// its own per-unit variation — plausible, since recalibrating for
			// the surface is exactly what a mixed deployment would do.
			svcA, err := ranging.NewService(ranging.DefaultConfig(envA), dep, t.RNG)
			if err != nil {
				return err
			}
			svcB, err := ranging.NewService(ranging.DefaultConfig(envB), dep, t.RNG)
			if err != nil {
				return err
			}
			minX, maxX := dep.Positions[0].X, dep.Positions[0].X
			for _, p := range dep.Positions {
				minX = math.Min(minX, p.X)
				maxX = math.Max(maxX, p.X)
			}
			boundary := minX + boundaryFrac*(maxX-minX)
			raw, err := measure.NewRaw(dep.N())
			if err != nil {
				return err
			}
			sideA := 0
			total := 0
			for i := 0; i < dep.N(); i++ {
				for j := i + 1; j < dep.N(); j++ {
					if dep.Positions[i].Dist(dep.Positions[j]) > 21 {
						continue
					}
					total++
					svc := svcB
					if (dep.Positions[i].X+dep.Positions[j].X)/2 < boundary {
						svc = svcA
						sideA++
					}
					if m, ok := svc.MeasurePair(i, j); ok {
						if err := raw.Add(i, j, m); err != nil {
							return err
						}
					}
				}
			}
			if total > 0 {
				t.Record("env_a_pair_frac", float64(sideA)/float64(total))
			}
			return recordSignedErrors(t, raw, dep)
		},
	}
}
