package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"resilientloc/internal/obs"
	"resilientloc/internal/stats"
)

// This file is the distributed half of the engine's determinism contract:
// partial execution over a trial sub-range, a serializable aggregate for
// what that sub-range computed, and a merge that reassembles any set of
// sub-ranges covering [0, trials) into byte-for-byte the Report a
// single-process run produces.
//
// Exactness hinges on reproducing the full run's aggregation tree, which is
// "Add samples sequentially within a shard, then Merge shards in ascending
// order". Shards fully covered by a sub-range therefore ship their
// aggregate state (stats.Online moments and quantile-sketch buckets, both
// of which merge exactly); a sub-range whose boundary cuts through a shard
// cannot ship moments — Welford's Merge is not bit-equal to the sequential
// Adds the full run performs inside one shard — so boundary fragments ship
// the raw per-trial samples instead, and the merging side replays them in
// trial order to rebuild the cut shard exactly.

// Partial is the serialized aggregate of one partial run: the trials
// [Lo, Hi) of a (Scenario, Seed, Trials, ShardSize) execution, broken into
// per-shard pieces. Partials whose ranges tile [0, Trials) merge into the
// full run's exact Report via MergePartials.
type Partial struct {
	Scenario  string `json:"scenario"`
	Seed      int64  `json:"seed"`
	Trials    int    `json:"trials"`
	ShardSize int    `json:"shard_size"`
	Lo        int    `json:"lo"`
	Hi        int    `json:"hi"`
	// Retained reports that per-trial values (trial scalars/series) ride
	// along for the campaign's Finalize step; all partials of one job must
	// agree on it.
	Retained bool         `json:"retained,omitempty"`
	Pieces   []ShardPiece `json:"pieces"`
}

// ShardPiece is the intersection of a partial run's range with one
// aggregation shard. A Complete piece covers its whole shard and carries
// serialized aggregate state; an incomplete piece carries the raw per-trial
// records so the merge can replay the cut shard's Adds exactly.
type ShardPiece struct {
	Shard int `json:"shard"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	// Complete pieces: aggregate state in metric-discovery order.
	Complete bool           `json:"complete,omitempty"`
	Metrics  []MetricState  `json:"metrics,omitempty"`
	Series   []SeriesState  `json:"series,omitempty"`
	Retain   *RetainedState `json:"retain,omitempty"`
	// Incomplete pieces: raw per-trial records in trial order.
	Raw []TrialRecord `json:"raw,omitempty"`
}

// MetricState is one scalar metric's streaming state within a complete
// shard piece: exact Welford moments plus the integer-bucket quantile
// sketch.
type MetricState struct {
	Name    string                `json:"name"`
	Moments stats.Online          `json:"moments"`
	Sketch  *stats.QuantileSketch `json:"sketch"`
}

// SeriesState is one series metric's pointwise streaming state within a
// complete shard piece.
type SeriesState struct {
	Name   string         `json:"name"`
	Trials int64          `json:"trials"`
	Points []stats.Online `json:"points"`
}

// RetainedState carries a complete piece's per-trial values (indexed
// relative to the piece's Lo) for campaigns that finalize from trial data.
// Absent trials are NaN (scalars) or null (series) — exactly the in-memory
// convention — which is why the fields use the NaN-safe stats.F64 wire
// float.
type RetainedState struct {
	Scalars map[string][]stats.F64   `json:"scalars,omitempty"`
	Series  map[string][][]stats.F64 `json:"series,omitempty"`
}

// TrialRecord is one trial's raw recorded samples, in record order, for
// exact replay of a shard the range boundary cut through.
type TrialRecord struct {
	Trial   int            `json:"trial"`
	Scalars []ScalarSample `json:"scalars,omitempty"`
	Series  []SeriesRecord `json:"series,omitempty"`
}

// ScalarSample is one recorded scalar sample.
type ScalarSample struct {
	Name  string    `json:"name"`
	Value stats.F64 `json:"value"`
}

// SeriesRecord is one recorded series sample.
type SeriesRecord struct {
	Name   string      `json:"name"`
	Values []stats.F64 `json:"values"`
}

// pieceBounds lists the shard intersections of [lo, hi): one entry per
// shard the range touches, clipped to the range.
func pieceBounds(lo, hi, shardSize, trials int) [][3]int {
	var out [][3]int // shard, pieceLo, pieceHi
	for si := lo / shardSize; si*shardSize < hi; si++ {
		pLo, pHi := si*shardSize, (si+1)*shardSize
		if pHi > trials {
			pHi = trials
		}
		if pLo < lo {
			pLo = lo
		}
		if pHi > hi {
			pHi = hi
		}
		out = append(out, [3]int{si, pLo, pHi})
	}
	return out
}

// shardBounds returns shard si's full trial range.
func shardBounds(si, shardSize, trials int) (lo, hi int) {
	lo, hi = si*shardSize, (si+1)*shardSize
	if hi > trials {
		hi = trials
	}
	return lo, hi
}

// RunPartial executes only the trials [lo, hi) of the scenario and returns
// their serializable aggregate. The run uses the same worker pool, budget,
// and progress contract as Run (progress totals are hi-lo). Scenarios whose
// trials retain structured outputs via T.Keep cannot run partially: those
// outputs do not serialize, so RunPartial fails rather than silently
// dropping them (in practice only single-trial campaigns keep outputs, and
// a coordinator never splits a single trial).
func (r *Runner) RunPartial(s Scenario, lo, hi int) (*Partial, error) {
	return r.RunPartialContext(context.Background(), s, lo, hi)
}

// RunPartialContext is RunPartial with an observability context: under
// tracing it records an engine.run span whose engine.shard children are the
// range's shard pieces (complete pieces and raw boundary fragments alike).
// Like RunContext, the context carries telemetry only — it does not cancel.
func (r *Runner) RunPartialContext(ctx context.Context, s Scenario, lo, hi int) (*Partial, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	trials := r.cfg.EffectiveTrials(s)
	if trials <= 0 {
		return nil, fmt.Errorf("engine: scenario %s: no trial count configured", s.Name)
	}
	if lo < 0 || hi <= lo || hi > trials {
		return nil, fmt.Errorf("engine: scenario %s: invalid trial range [%d, %d) of %d trials",
			s.Name, lo, hi, trials)
	}
	shardSize := r.cfg.EffectiveShardSize()
	keep := r.cfg.KeepTrialValues
	bounds := pieceBounds(lo, hi, shardSize, trials)

	p := &Partial{
		Scenario: s.Name, Seed: r.cfg.Seed, Trials: trials, ShardSize: shardSize,
		Lo: lo, Hi: hi, Retained: keep,
		Pieces: make([]ShardPiece, len(bounds)),
	}
	ctx, runSpan := obs.Start(ctx, "engine.run")
	if runSpan != nil {
		runSpan.SetAttr("scenario", s.Name).SetAttr("trials", trials).
			SetAttr("shard_size", shardSize).SetAttr("lo", lo).SetAttr("hi", hi)
	}
	defer runSpan.End()

	type pieceErr struct {
		err   error
		trial int
	}
	errs := make([]pieceErr, len(bounds))
	r.runPool(ctx, len(bounds), hi-lo, func(pi int) int {
		si, pLo, pHi := bounds[pi][0], bounds[pi][1], bounds[pi][2]
		sLo, sHi := shardBounds(si, shardSize, trials)
		_, shardSpan := obs.Start(ctx, "engine.shard")
		if shardSpan != nil {
			shardSpan.SetAttr("shard", si).SetAttr("lo", pLo).SetAttr("hi", pHi)
		}
		pieceStart := time.Now()
		completed := func() int {
			if pLo == sLo && pHi == sHi {
				agg := runShard(s, r.cfg.Seed, pLo, pHi, keep)
				if agg.err != nil {
					errs[pi] = pieceErr{agg.err, agg.errTrial}
					return agg.errTrial - pLo
				}
				piece, err := aggToPiece(si, agg, keep)
				if err != nil {
					errs[pi] = pieceErr{err, pLo}
					return pHi - pLo
				}
				p.Pieces[pi] = piece
				return pHi - pLo
			}
			piece, failTrial, err := runRawPiece(s, r.cfg.Seed, si, pLo, pHi)
			if err != nil {
				errs[pi] = pieceErr{err, failTrial}
				return failTrial - pLo
			}
			p.Pieces[pi] = piece
			return pHi - pLo
		}()
		obsShardSec.Observe(time.Since(pieceStart).Seconds())
		obsShards.Inc()
		obsTrials.Add(int64(completed))
		if shardSpan != nil && errs[pi].err != nil {
			shardSpan.SetAttr("error", errs[pi].err.Error())
		}
		shardSpan.End()
		return completed
	})
	var firstErr error
	firstTrial := -1
	for _, e := range errs {
		if e.err != nil && (firstTrial == -1 || e.trial < firstTrial) {
			firstErr, firstTrial = e.err, e.trial
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return p, nil
}

// runPool executes n piece jobs across the runner's worker pool, observing
// the shared budget (budget waits are measured; see acquireBudget) and
// reporting progress against total trials (each job returns its completed
// trial count).
func (r *Runner) runPool(ctx context.Context, n, total int, job func(i int) int) {
	workers := r.cfg.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > n {
		workers = n
	}
	runIndexed(workers, n, total, func(i int) int {
		r.acquireBudget(ctx)
		if r.cfg.Budget != nil {
			defer r.cfg.Budget.release()
		}
		return job(i)
	}, r.cfg.Progress)
}

// aggToPiece serializes a complete shard's aggregate state.
func aggToPiece(si int, agg *shardAgg, keep bool) (ShardPiece, error) {
	piece := ShardPiece{Shard: si, Lo: agg.lo, Hi: agg.hi, Complete: true}
	for _, name := range agg.scalarOrder {
		a := agg.scalars[name]
		piece.Metrics = append(piece.Metrics, MetricState{Name: name, Moments: a.online, Sketch: a.sketch})
	}
	for _, name := range agg.seriesOrder {
		a := agg.series[name]
		piece.Series = append(piece.Series, SeriesState{Name: name, Trials: a.trials, Points: a.points})
	}
	if keep {
		for _, out := range agg.trialOutputs {
			if out != nil {
				return ShardPiece{}, fmt.Errorf(
					"engine: shard %d retains structured per-trial outputs (T.Keep), which do not serialize; the campaign cannot run partially", si)
			}
		}
		ret := &RetainedState{}
		if len(agg.trialScalars) > 0 {
			ret.Scalars = make(map[string][]stats.F64, len(agg.trialScalars))
			for name, vs := range agg.trialScalars {
				ret.Scalars[name] = stats.ToF64(vs)
			}
		}
		if len(agg.trialSeries) > 0 {
			ret.Series = make(map[string][][]stats.F64, len(agg.trialSeries))
			for name, rows := range agg.trialSeries {
				wr := make([][]stats.F64, len(rows))
				for i, row := range rows {
					wr[i] = stats.ToF64(row)
				}
				ret.Series[name] = wr
			}
		}
		piece.Retain = ret
	}
	return piece, nil
}

// runRawPiece executes trials [lo, hi) of a shard the range boundary cuts
// through, capturing each trial's raw samples for replay at merge time. On
// a trial error it returns the failing trial index.
func runRawPiece(s Scenario, seed int64, si, lo, hi int) (ShardPiece, int, error) {
	piece := ShardPiece{Shard: si, Lo: lo, Hi: hi, Raw: make([]TrialRecord, 0, hi-lo)}
	ws := grabArena()
	defer releaseArena(ws)
	var shardData any
	if s.ShardInit != nil {
		shardData = s.ShardInit()
	}
	for trial := lo; trial < hi; trial++ {
		t := &T{Trial: trial, RNG: newTrialRNG(s, seed, trial), ShardData: shardData, ws: ws}
		err := s.Run(t)
		ws.Release()
		if err != nil {
			return ShardPiece{}, trial, fmt.Errorf("engine: scenario %s: trial %d: %w", s.Name, trial, err)
		}
		if t.output != nil {
			return ShardPiece{}, trial, fmt.Errorf(
				"engine: scenario %s: trial %d retains a structured output (T.Keep), which does not serialize; the campaign cannot run partially", s.Name, trial)
		}
		rec := TrialRecord{Trial: trial}
		for _, smp := range t.scalars {
			rec.Scalars = append(rec.Scalars, ScalarSample{Name: smp.name, Value: stats.F64(smp.value)})
		}
		for _, ss := range t.series {
			rec.Series = append(rec.Series, SeriesRecord{Name: ss.name, Values: stats.ToF64(ss.values)})
		}
		piece.Raw = append(piece.Raw, rec)
	}
	return piece, -1, nil
}

// pieceToAgg restores a complete piece's shard aggregate.
func pieceToAgg(piece ShardPiece, retained bool) (*shardAgg, error) {
	agg := &shardAgg{
		lo: piece.Lo, hi: piece.Hi,
		scalars: make(map[string]*scalarAgg, len(piece.Metrics)),
		series:  make(map[string]*seriesAgg, len(piece.Series)),
	}
	for _, m := range piece.Metrics {
		if m.Sketch == nil {
			return nil, fmt.Errorf("engine: shard %d metric %q has no sketch state", piece.Shard, m.Name)
		}
		if _, dup := agg.scalars[m.Name]; dup {
			return nil, fmt.Errorf("engine: shard %d metric %q duplicated", piece.Shard, m.Name)
		}
		agg.scalars[m.Name] = &scalarAgg{online: m.Moments, sketch: m.Sketch}
		agg.scalarOrder = append(agg.scalarOrder, m.Name)
	}
	for _, ss := range piece.Series {
		if _, dup := agg.series[ss.Name]; dup {
			return nil, fmt.Errorf("engine: shard %d series %q duplicated", piece.Shard, ss.Name)
		}
		agg.series[ss.Name] = &seriesAgg{points: ss.Points, trials: ss.Trials}
		agg.seriesOrder = append(agg.seriesOrder, ss.Name)
	}
	if retained {
		n := piece.Hi - piece.Lo
		agg.trialScalars = make(map[string][]float64)
		agg.trialSeries = make(map[string][][]float64)
		agg.trialOutputs = make([]any, n)
		if piece.Retain != nil {
			for name, vs := range piece.Retain.Scalars {
				if len(vs) != n {
					return nil, fmt.Errorf("engine: shard %d retained scalars %q: %d values for %d trials",
						piece.Shard, name, len(vs), n)
				}
				agg.trialScalars[name] = stats.FromF64(vs)
			}
			for name, rows := range piece.Retain.Series {
				if len(rows) != n {
					return nil, fmt.Errorf("engine: shard %d retained series %q: %d rows for %d trials",
						piece.Shard, name, len(rows), n)
				}
				out := make([][]float64, n)
				for i, row := range rows {
					out[i] = stats.FromF64(row)
				}
				agg.trialSeries[name] = out
			}
		}
	}
	return agg, nil
}

// replayPieces rebuilds a cut shard's aggregate by replaying the raw trial
// records of its fragments in trial order — the exact Add sequence the full
// run performs inside that shard.
func replayPieces(scenario string, si, lo, hi int, pieces []ShardPiece, keep bool) (*shardAgg, error) {
	agg := &shardAgg{
		lo: lo, hi: hi,
		scalars: make(map[string]*scalarAgg),
		series:  make(map[string]*seriesAgg),
	}
	if keep {
		agg.trialScalars = make(map[string][]float64)
		agg.trialSeries = make(map[string][][]float64)
		agg.trialOutputs = make([]any, hi-lo)
	}
	next := lo
	for _, piece := range pieces {
		if piece.Complete {
			return nil, fmt.Errorf("engine: merge: shard %d mixes a complete piece with fragments", si)
		}
		if piece.Lo != next {
			return nil, fmt.Errorf("engine: merge: shard %d fragments leave a gap or overlap at trial %d (piece starts at %d)",
				si, next, piece.Lo)
		}
		if len(piece.Raw) != piece.Hi-piece.Lo {
			return nil, fmt.Errorf("engine: merge: shard %d fragment [%d, %d) carries %d raw trials",
				si, piece.Lo, piece.Hi, len(piece.Raw))
		}
		for i, rec := range piece.Raw {
			if rec.Trial != piece.Lo+i {
				return nil, fmt.Errorf("engine: merge: shard %d raw trial %d out of order (want %d)",
					si, rec.Trial, piece.Lo+i)
			}
			t := &T{Trial: rec.Trial}
			for _, smp := range rec.Scalars {
				t.scalars = append(t.scalars, sample{name: smp.Name, value: float64(smp.Value)})
			}
			for _, ss := range rec.Series {
				t.series = append(t.series, seriesSample{name: ss.Name, values: stats.FromF64(ss.Values)})
			}
			if err := agg.fold(t, keep); err != nil {
				return nil, fmt.Errorf("engine: merge: scenario %s: %w", scenario, err)
			}
		}
		next = piece.Hi
	}
	if next != hi {
		return nil, fmt.Errorf("engine: merge: shard %d fragments stop at trial %d of [%d, %d)", si, next, lo, hi)
	}
	return agg, nil
}

// AdaptPartial revalidates a partial banked under a different full trial
// count and restamps it for a job of newTrials — the bridge that lets a
// cached 1024-trial prefix merge into a 4096-trial request. It is valid
// because per-trial computation depends only on (scenario, seed, trial
// index) and shard membership only on (trial index, shard size): trial 37
// of a 1024-trial run and trial 37 of a 4096-trial run are the same trial
// in the same shard. The one geometry hazard is the final shard of the old
// run: a piece marked Complete because the old N clipped its shard short
// no longer spans that shard under a larger N, and its Welford state
// cannot be extended sample-by-sample — such a partial is rejected rather
// than restamped (raw boundary pieces replay per trial, so they always
// adapt). A partial whose range exceeds newTrials is rejected too, which
// also makes shrink-reuse (banked under a larger N) safe whenever it
// passes. On success p.Trials is updated in place; on error p is
// unmodified.
func AdaptPartial(p *Partial, newTrials int) error {
	if p == nil {
		return fmt.Errorf("engine: adapt: nil partial")
	}
	if newTrials <= 0 || p.ShardSize <= 0 {
		return fmt.Errorf("engine: adapt: %s: invalid geometry (%d trials, shard size %d)",
			p.Scenario, newTrials, p.ShardSize)
	}
	if p.Trials == newTrials {
		return nil
	}
	if p.Hi > newTrials {
		return fmt.Errorf("engine: adapt: %s: range [%d, %d) exceeds %d trials",
			p.Scenario, p.Lo, p.Hi, newTrials)
	}
	for _, piece := range p.Pieces {
		if !piece.Complete {
			continue
		}
		sLo, sHi := shardBounds(piece.Shard, p.ShardSize, newTrials)
		if piece.Lo != sLo || piece.Hi != sHi {
			return fmt.Errorf("engine: adapt: %s: complete piece [%d, %d) no longer spans shard %d [%d, %d) under %d trials",
				p.Scenario, piece.Lo, piece.Hi, piece.Shard, sLo, sHi, newTrials)
		}
	}
	p.Trials = newTrials
	return nil
}

// MergePartials reassembles partial runs whose ranges tile [0, trials) into
// the full run's Report. The result is byte-identical to running the same
// (scenario, seed, trials, shard size) in one process: complete shards
// restore their exact aggregate state, cut shards replay their raw samples
// in trial order, and the shard merge then proceeds exactly as in Run.
// Execution metadata (Workers, ElapsedSeconds) is left zero for the caller
// to stamp.
func MergePartials(parts []*Partial) (*Report, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("engine: merge: no partials")
	}
	sorted := make([]*Partial, len(parts))
	copy(sorted, parts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })

	head := sorted[0]
	if head.Trials <= 0 || head.ShardSize <= 0 {
		return nil, fmt.Errorf("engine: merge: partial of %s has no trial/shard geometry", head.Scenario)
	}
	next := 0
	for _, p := range sorted {
		if p.Scenario != head.Scenario || p.Seed != head.Seed ||
			p.Trials != head.Trials || p.ShardSize != head.ShardSize || p.Retained != head.Retained {
			return nil, fmt.Errorf("engine: merge: partial [%d, %d) of %s disagrees with [%d, %d) of %s on job identity",
				p.Lo, p.Hi, p.Scenario, head.Lo, head.Hi, head.Scenario)
		}
		if p.Lo != next {
			return nil, fmt.Errorf("engine: merge: %s: ranges leave a gap or overlap at trial %d (next range starts at %d)",
				head.Scenario, next, p.Lo)
		}
		if p.Hi <= p.Lo || p.Hi > head.Trials {
			return nil, fmt.Errorf("engine: merge: %s: invalid range [%d, %d)", head.Scenario, p.Lo, p.Hi)
		}
		next = p.Hi
	}
	if next != head.Trials {
		return nil, fmt.Errorf("engine: merge: %s: ranges cover [0, %d) of %d trials", head.Scenario, next, head.Trials)
	}

	numShards := (head.Trials + head.ShardSize - 1) / head.ShardSize
	byShard := make([][]ShardPiece, numShards)
	for _, p := range sorted {
		for _, piece := range p.Pieces {
			if piece.Shard < 0 || piece.Shard >= numShards {
				return nil, fmt.Errorf("engine: merge: %s: piece names shard %d of %d", head.Scenario, piece.Shard, numShards)
			}
			byShard[piece.Shard] = append(byShard[piece.Shard], piece)
		}
	}
	aggs := make([]*shardAgg, numShards)
	for si := range byShard {
		pieces := byShard[si]
		sLo, sHi := shardBounds(si, head.ShardSize, head.Trials)
		sort.Slice(pieces, func(i, j int) bool { return pieces[i].Lo < pieces[j].Lo })
		switch {
		case len(pieces) == 0:
			return nil, fmt.Errorf("engine: merge: %s: no pieces for shard %d", head.Scenario, si)
		case len(pieces) == 1 && pieces[0].Complete:
			if pieces[0].Lo != sLo || pieces[0].Hi != sHi {
				return nil, fmt.Errorf("engine: merge: %s: complete piece [%d, %d) does not span shard %d [%d, %d)",
					head.Scenario, pieces[0].Lo, pieces[0].Hi, si, sLo, sHi)
			}
			agg, err := pieceToAgg(pieces[0], head.Retained)
			if err != nil {
				return nil, err
			}
			aggs[si] = agg
		default:
			agg, err := replayPieces(head.Scenario, si, sLo, sHi, pieces, head.Retained)
			if err != nil {
				return nil, err
			}
			aggs[si] = agg
		}
	}
	cfg := Config{Seed: head.Seed, KeepTrialValues: head.Retained}
	return mergeShards(head.Scenario, aggs, head.Trials, cfg)
}

// RunCampaignPartial executes only the trials [lo, hi) of the campaign's
// scenario — with the campaign's shard/retention overrides applied, exactly
// as RunCampaign would — and returns the serializable partial aggregate.
// Finalize does not run: it needs the full merged Report, which only the
// merging side holds.
func RunCampaignPartial[R any](r *Runner, c Campaign[R], lo, hi int) (*Partial, error) {
	return RunCampaignPartialContext(context.Background(), r, c, lo, hi)
}

// RunCampaignPartialContext is RunCampaignPartial with an observability
// context (see Runner.RunPartialContext).
func RunCampaignPartialContext[R any](ctx context.Context, r *Runner, c Campaign[R], lo, hi int) (*Partial, error) {
	return (&Runner{cfg: c.apply(r.cfg)}).RunPartialContext(ctx, c.Scenario, lo, hi)
}

// FinalizeCampaign runs the campaign's Finalize step over an
// externally-merged Report (see MergePartials) — the coordinator's last
// step after reassembling distributed partials.
func FinalizeCampaign[R any](c Campaign[R], rep *Report) (R, error) {
	var zero R
	if c.Finalize == nil {
		return zero, fmt.Errorf("engine: campaign %s has no Finalize", c.Scenario.Name)
	}
	res, err := c.Finalize(rep)
	if err != nil {
		return zero, fmt.Errorf("engine: campaign %s: finalize: %w", c.Scenario.Name, err)
	}
	return res, nil
}
