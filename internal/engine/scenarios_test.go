package engine

import (
	"testing"

	"resilientloc/internal/acoustics"
)

func TestLibraryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Library() {
		if err := s.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("scenario %q has no description", s.Name)
		}
		if s.Trials <= 0 {
			t.Errorf("scenario %q has no default trial count", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if _, ok := Find(s.Name); !ok {
			t.Errorf("Find(%q) failed", s.Name)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find accepted unknown scenario")
	}
	if len(Library()) < 10 {
		t.Errorf("library has only %d scenarios", len(Library()))
	}
}

func TestSuitesWellFormed(t *testing.T) {
	for _, suite := range Suites() {
		if suite.Name == "" || len(suite.Scenarios) == 0 {
			t.Errorf("malformed suite %+v", suite.Name)
		}
		if _, ok := FindSuite(suite.Name); !ok {
			t.Errorf("FindSuite(%q) failed", suite.Name)
		}
	}
	if _, ok := FindSuite("nope"); ok {
		t.Error("FindSuite accepted unknown suite")
	}
}

// TestTownScenariosRunAndAreDeterministic runs the cheap multilateration
// scenarios end-to-end at two worker counts with a reduced trial budget and
// checks both the physics and the reproducibility.
func TestTownScenariosRunAndAreDeterministic(t *testing.T) {
	s := MultilatTown()
	serial := mustRun(t, Config{Workers: 1, Trials: 6, Seed: 5}, s)
	parallel := mustRun(t, Config{Workers: 8, Trials: 6, Seed: 5}, s)
	if !sameReport(serial, parallel) {
		t.Error("multilat-town diverges across worker counts")
	}
	frac, ok := serial.Metric("localized_frac")
	if !ok || frac.Mean < 0.5 {
		t.Errorf("town localization fraction %.2f, want most nodes localized", frac.Mean)
	}
	avg, ok := serial.Metric("avg_error_m")
	if !ok || avg.Mean > 2 {
		t.Errorf("town avg error %.2f m, want small (paper: 0.95 m)", avg.Mean)
	}
}

// TestAnchorDropoutDegrades: removing anchors must not improve coverage —
// the new workload behaves sanely.
func TestAnchorDropoutDegrades(t *testing.T) {
	cfg := Config{Workers: 0, Trials: 6, Seed: 11}
	full := mustRun(t, cfg, MultilatTown())
	dropped := mustRun(t, cfg, AnchorDropout(12))
	fFull, _ := full.Metric("localized_frac")
	fDrop, _ := dropped.Metric("localized_frac")
	if fDrop.Mean > fFull.Mean+0.05 {
		t.Errorf("dropping 12 anchors raised coverage: %.2f -> %.2f", fFull.Mean, fDrop.Mean)
	}
	if used, _ := dropped.Metric("anchors_used"); used.Mean != 6 {
		t.Errorf("anchors_used %.1f, want 6", used.Mean)
	}
}

// TestLargeGridRuns exercises the large-N workload on a smaller grid to
// keep the test fast.
func TestLargeGridRuns(t *testing.T) {
	rep := mustRun(t, Config{Workers: 0, Trials: 2, Seed: 3}, LargeGrid(8, 8))
	frac, ok := rep.Metric("localized_frac")
	if !ok || frac.Mean < 0.5 {
		t.Errorf("large grid localized fraction %.2f, want > 0.5", frac.Mean)
	}
	// Progressive promotion compounds the 0.33 m measurement noise over
	// multiple hops from the sparse original anchors, so the bound is
	// looser than for the anchor-dense town.
	if avg, ok := rep.Metric("avg_error_m"); !ok || avg.Mean > 6 {
		t.Errorf("large grid avg error %.2f m, want < 6 m", avg.Mean)
	}
}

// TestMaxRangeTrialCap: a -trials override larger than the distance list
// must be capped, not index past the sweep (regression: this used to panic
// in SeedFn with index out of range).
func TestMaxRangeTrialCap(t *testing.T) {
	s := MaxRangeScenario(acoustics.Grass(), 2, []float64{5, 10}, 2)
	rep := mustRun(t, Config{Workers: 2, Trials: 20, Seed: 1}, s)
	if rep.Trials != 2 {
		t.Errorf("effective trials %d, want capped at 2", rep.Trials)
	}
	if m, _ := rep.Metric("success_rate"); m.Count != 2 {
		t.Errorf("success_rate count %d, want 2", m.Count)
	}
}

// TestNoiseSweepDegrades: raising the noise floor must not increase the
// detection success rate.
func TestNoiseSweepDegrades(t *testing.T) {
	cfg := Config{Workers: 0, Trials: 8, Seed: 13}
	quiet := mustRun(t, cfg, NoiseSweep(0))
	loud := mustRun(t, cfg, NoiseSweep(12))
	sq, _ := quiet.Metric("success_rate")
	sl, _ := loud.Metric("success_rate")
	if sl.Mean > sq.Mean+0.05 {
		t.Errorf("+12 dB noise raised success rate: %.2f -> %.2f", sq.Mean, sl.Mean)
	}
}
