package engine

import (
	"runtime"
	"sync"
)

// Budget is a pool of worker slots shared by concurrently running Runners.
// Each runner's workers acquire one slot per shard and release it when the
// shard's trials finish, so N overlapped campaigns together execute at most
// Cap() shards at a time instead of each spawning its own full worker pool.
//
// The budget bounds only *when* shards execute, never *what* they compute:
// shard partitions and the shard-ordered merge are independent of
// scheduling, so budgeted runs produce byte-identical reports (only
// Report.Workers and Report.ElapsedSeconds reflect the actual run).
type Budget struct {
	slots chan struct{}
}

// NewBudget returns a budget of n worker slots (values below 1 are clamped
// to 1 so a budget can never deadlock its holders).
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	return &Budget{slots: make(chan struct{}, n)}
}

// Cap returns the number of slots in the budget.
func (b *Budget) Cap() int { return cap(b.slots) }

// InUse reports how many slots are currently held — an instantaneous
// saturation reading (InUse == Cap means every worker slot is busy and new
// shards queue). It is inherently racy against concurrent acquire/release
// and is meant for health endpoints and scoreboards, not for scheduling.
func (b *Budget) InUse() int { return len(b.slots) }

// acquire blocks until a slot is free and claims it.
func (b *Budget) acquire() { b.slots <- struct{}{} }

// release returns a previously acquired slot.
func (b *Budget) release() { <-b.slots }

var (
	sharedBudgetOnce sync.Once
	sharedBudget     *Budget
)

// SharedBudget returns the process-wide worker budget, sized to GOMAXPROCS
// at first use. The unified campaign runner (internal/engine/run) attaches
// it to every engine Config so that overlapped suite campaigns — and even a
// -parallel value above the core count — share the machine instead of
// oversubscribing it.
func SharedBudget() *Budget {
	sharedBudgetOnce.Do(func() {
		sharedBudget = NewBudget(runtime.GOMAXPROCS(0))
	})
	return sharedBudget
}
