package engine

import (
	"context"
	"fmt"
)

// Campaign is the engine's unit of reusable work: "N trials → per-trial
// measurement → shard-merged aggregate → finalized result". It couples a
// Scenario with the execution knobs the workload needs (shard pinning,
// per-trial retention) and a Finalize step that turns the shard-merged
// Report into a result of type R.
//
// Both halves of the codebase run on campaigns: the scenario library wraps
// each Scenario via ReportCampaign (R = *Report), and every figure
// reproduction in internal/experiments builds a Campaign[*experiments.Result]
// whose Finalize assembles the figure from the report's trial values. One
// runner, one cache, one progress path serve both.
type Campaign[R any] struct {
	// Scenario describes the trials. Its Name is the campaign's identity —
	// cache keys and progress lines are derived from it.
	Scenario Scenario

	// ShardSize, when positive, pins the shard partition regardless of the
	// runner's Config. Campaigns whose trials are individually heavy (one
	// trial per sweep point, one optimizer descent per trial) set 1 so each
	// trial gets its own worker slot.
	ShardSize int

	// FixedTrials declares the scenario's trial count structural: trial
	// indices encode sweep points or ensemble membership that Finalize
	// hard-codes, so a runner-level Trials override is ignored rather than
	// truncating the structure out from under Finalize.
	FixedTrials bool

	// KeepTrialValues requests per-trial values (Report.TrialScalars,
	// TrialSeries, TrialOutputs) for Finalize, on top of the streaming
	// aggregates.
	KeepTrialValues bool

	// Finalize converts the Report into the campaign's result. Nil is only
	// valid when R is *Report (see ReportCampaign).
	Finalize func(rep *Report) (R, error)
}

// RunCampaign executes the campaign's scenario under the runner's
// configuration — with the campaign's ShardSize/KeepTrialValues overrides
// applied — and finalizes the report. The returned Report is the raw
// shard-merged aggregate backing the result.
func RunCampaign[R any](r *Runner, c Campaign[R]) (R, *Report, error) {
	return RunCampaignContext(context.Background(), r, c)
}

// RunCampaignContext is RunCampaign with an observability context: spans
// recorded by the engine (engine.run, engine.shard, engine.budget.wait)
// land in the context's tracer, if any (see Runner.RunContext).
func RunCampaignContext[R any](ctx context.Context, r *Runner, c Campaign[R]) (R, *Report, error) {
	var zero R
	if c.Finalize == nil {
		return zero, nil, fmt.Errorf("engine: campaign %s has no Finalize", c.Scenario.Name)
	}
	rep, err := (&Runner{cfg: c.apply(r.cfg)}).RunContext(ctx, c.Scenario)
	if err != nil {
		return zero, nil, err
	}
	res, err := c.Finalize(rep)
	if err != nil {
		return zero, nil, fmt.Errorf("engine: campaign %s: finalize: %w", c.Scenario.Name, err)
	}
	return res, rep, nil
}

// apply overlays the campaign's execution overrides on a runner config.
func (c Campaign[R]) apply(cfg Config) Config {
	if c.ShardSize > 0 {
		cfg.ShardSize = c.ShardSize
	}
	if c.KeepTrialValues {
		cfg.KeepTrialValues = true
	}
	if c.FixedTrials {
		cfg.Trials = 0
	}
	return cfg
}

// CampaignConfig resolves the effective execution parameters RunCampaign
// would use — the ingredients of a cache key.
func CampaignConfig[R any](r *Runner, c Campaign[R]) (trials, shardSize int) {
	cfg := c.apply(r.cfg)
	return cfg.EffectiveTrials(c.Scenario), cfg.EffectiveShardSize()
}

// ReportCampaign wraps a bare Scenario as a campaign whose result is the
// Report itself, which is how the scenario library runs on the shared
// campaign path.
func ReportCampaign(s Scenario) Campaign[*Report] {
	return Campaign[*Report]{
		Scenario: s,
		Finalize: func(rep *Report) (*Report, error) { return rep, nil },
	}
}
