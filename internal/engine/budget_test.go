package engine

import (
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// busyScenario records how many of its trials run concurrently.
func busyScenario(cur, peak *atomic.Int32) Scenario {
	return Scenario{
		Name:   "busy",
		Trials: 24,
		Run: func(t *T) error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		},
	}
}

// TestBudgetCapsConcurrentShards runs two over-provisioned runners against
// a 2-slot budget and checks that no more than 2 trials ever execute at
// once process-wide, even though the runners together spawn 8 workers.
func TestBudgetCapsConcurrentShards(t *testing.T) {
	budget := NewBudget(2)
	var cur, peak atomic.Int32
	s := busyScenario(&cur, &peak)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r, err := NewRunner(Config{Workers: 4, Seed: seed, ShardSize: 1, Budget: budget})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := r.Run(s); err != nil {
				t.Error(err)
			}
		}(int64(i + 1))
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Errorf("peak concurrent trials %d exceeds budget of 2", got)
	}
}

// TestBudgetPreservesResults checks the budget bounds scheduling only: a
// budgeted run's aggregates are identical to an unbudgeted one's.
func TestBudgetPreservesResults(t *testing.T) {
	s, ok := Find("multilat-town")
	if !ok {
		t.Fatal("multilat-town missing")
	}
	base := Config{Workers: 4, Trials: 8, Seed: 3, ShardSize: 2}
	budgeted := base
	budgeted.Budget = NewBudget(2)
	run := func(cfg Config) *Report {
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		rep.ClearExecutionMeta() // only workers/elapsed may differ
		return rep
	}
	a, b := run(base), run(budgeted)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("budgeted run diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestProgressMonotonicAcrossConcurrentCampaigns runs several campaigns
// concurrently on the shared budget and checks each campaign's Progress
// callback reports a monotonically non-decreasing done counter that lands
// exactly on its total.
func TestProgressMonotonicAcrossConcurrentCampaigns(t *testing.T) {
	budget := NewBudget(runtime.GOMAXPROCS(0))
	var cur, peak atomic.Int32
	s := busyScenario(&cur, &peak)
	const campaigns = 3
	var wg sync.WaitGroup
	for i := 0; i < campaigns; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			last := -1
			var mu sync.Mutex
			cfg := Config{Workers: 4, Seed: seed, ShardSize: 2, Budget: budget,
				Progress: func(done, total int) {
					mu.Lock()
					defer mu.Unlock()
					if done < last {
						t.Errorf("seed %d: done went backwards: %d after %d", seed, done, last)
					}
					last = done
					if total != 24 {
						t.Errorf("seed %d: total = %d, want 24", seed, total)
					}
				}}
			r, err := NewRunner(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := r.Run(s); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if last != 24 {
				t.Errorf("seed %d: final done = %d, want 24", seed, last)
			}
		}(int64(i + 1))
	}
	wg.Wait()
}

func TestNewBudgetClampsAndSizes(t *testing.T) {
	if got := NewBudget(0).Cap(); got != 1 {
		t.Errorf("NewBudget(0).Cap() = %d, want 1", got)
	}
	if got := NewBudget(5).Cap(); got != 5 {
		t.Errorf("NewBudget(5).Cap() = %d, want 5", got)
	}
	if a, b := SharedBudget(), SharedBudget(); a != b || a.Cap() < 1 {
		t.Errorf("SharedBudget not a stable process-wide pool: %p vs %p cap %d", a, b, a.Cap())
	}
}

func TestReportExecutionMeta(t *testing.T) {
	rep := &Report{Workers: 8, ElapsedSeconds: 1.5}
	rep.ClearExecutionMeta()
	if rep.Workers != 0 || rep.ElapsedSeconds != 0 {
		t.Errorf("ClearExecutionMeta left %d workers, %gs", rep.Workers, rep.ElapsedSeconds)
	}
	rep.SetExecutionMeta(2, 0.25)
	if rep.Workers != 2 || rep.ElapsedSeconds != 0.25 {
		t.Errorf("SetExecutionMeta stored %d workers, %gs", rep.Workers, rep.ElapsedSeconds)
	}
}
