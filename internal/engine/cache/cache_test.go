package cache

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testKey() Key {
	return Key{Scenario: "s", Seed: 1, Trials: 8, ShardSize: 2, Fingerprint: "abc"}
}

func TestKeyHashSensitivity(t *testing.T) {
	base := testKey()
	baseHash := base.Hash()
	if baseHash != base.Hash() {
		t.Fatal("hash not stable")
	}
	variants := map[string]Key{
		"scenario":    {Scenario: "other", Seed: 1, Trials: 8, ShardSize: 2, Fingerprint: "abc"},
		"seed":        {Scenario: "s", Seed: 2, Trials: 8, ShardSize: 2, Fingerprint: "abc"},
		"trials":      {Scenario: "s", Seed: 1, Trials: 9, ShardSize: 2, Fingerprint: "abc"},
		"shard size":  {Scenario: "s", Seed: 1, Trials: 8, ShardSize: 3, Fingerprint: "abc"},
		"fingerprint": {Scenario: "s", Seed: 1, Trials: 8, ShardSize: 2, Fingerprint: "xyz"},
	}
	for field, k := range variants {
		if k.Hash() == baseHash {
			t.Errorf("changing %s did not change the key hash", field)
		}
	}
}

type payload struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	want := payload{Name: "x", Values: []float64{1.5, -2.25, 0.1}}
	if hit, err := c.Get(k, &payload{}); err != nil || hit {
		t.Fatalf("empty cache: hit=%v err=%v", hit, err)
	}
	if err := c.Put(k, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	hit, err := c.Get(k, &got)
	if err != nil || !hit {
		t.Fatalf("after Put: hit=%v err=%v", hit, err)
	}
	if got.Name != want.Name || len(got.Values) != len(want.Values) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Errorf("value %d: %v != %v (float round trip must be exact)", i, got.Values[i], want.Values[i])
		}
	}

	// A different key misses even though an entry exists.
	other := k
	other.Seed = 99
	if hit, _ := c.Get(other, &payload{}); hit {
		t.Error("different seed hit the same entry")
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := c.Put(k, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, k.Hash()+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if hit, err := c.Get(k, &payload{}); err != nil || hit {
		t.Errorf("corrupt entry: hit=%v err=%v, want clean miss", hit, err)
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a == "" || a != b {
		t.Errorf("fingerprint unstable: %q vs %q", a, b)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("want error for empty cache dir")
	}
}

// putAged stores an entry under a seed-varied key and backdates its file.
func putAged(t *testing.T, c *Cache, seed int64, age time.Duration) Key {
	t.Helper()
	k := testKey()
	k.Seed = seed
	if err := c.Put(k, payload{Name: "x", Values: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(c.path(k), when, when); err != nil {
		t.Fatal(err)
	}
	return k
}

func hits(t *testing.T, c *Cache, k Key) bool {
	t.Helper()
	hit, err := c.Get(k, &payload{})
	if err != nil {
		t.Fatal(err)
	}
	return hit
}

func TestGCRemovesAgedEntries(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	old := putAged(t, c, 1, 48*time.Hour)
	fresh := putAged(t, c, 2, time.Minute)
	res, err := c.GC(24*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 2 || res.Removed != 1 {
		t.Errorf("GC = %+v, want 2 scanned 1 removed", res)
	}
	if hits(t, c, old) {
		t.Error("aged entry survived GC")
	}
	if !hits(t, c, fresh) {
		t.Error("fresh entry removed by age-bounded GC")
	}
}

func TestGCEnforcesSizeBoundOldestFirst(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	oldest := putAged(t, c, 1, 3*time.Hour)
	middle := putAged(t, c, 2, 2*time.Hour)
	newest := putAged(t, c, 3, time.Hour)
	fi, err := os.Stat(c.path(newest))
	if err != nil {
		t.Fatal(err)
	}
	// Room for roughly two same-sized entries: the oldest must go first.
	res, err := c.GC(0, 2*fi.Size())
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 || res.RemainingBytes > 2*fi.Size() {
		t.Errorf("GC = %+v, want 1 removed within %d bytes", res, 2*fi.Size())
	}
	if hits(t, c, oldest) {
		t.Error("oldest entry survived size-bounded GC")
	}
	if !hits(t, c, middle) || !hits(t, c, newest) {
		t.Error("size-bounded GC removed more than the oldest entry")
	}
}

// TestGetRefreshesAgeForGC: a hit must reset the entry's GC clock, so hot
// entries never age out while cold ones do.
func TestGetRefreshesAgeForGC(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	hot := putAged(t, c, 1, 48*time.Hour)
	cold := putAged(t, c, 2, 48*time.Hour)
	if !hits(t, c, hot) {
		t.Fatal("aged entry missed before GC")
	}
	if _, err := c.GC(24*time.Hour, 0); err != nil {
		t.Fatal(err)
	}
	if !hits(t, c, hot) {
		t.Error("recently hit entry aged out")
	}
	if hits(t, c, cold) {
		t.Error("cold entry of the same age survived")
	}
}

func TestMaybeGCThrottlesByStamp(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	putAged(t, c, 1, 48*time.Hour)
	res, ran, err := c.MaybeGC(time.Hour, 24*time.Hour, 0)
	if err != nil || !ran || res.Removed != 1 {
		t.Fatalf("first MaybeGC: ran=%v removed=%d err=%v, want a sweep removing 1", ran, res.Removed, err)
	}
	survivor := putAged(t, c, 2, 48*time.Hour)
	if _, ran, err := c.MaybeGC(time.Hour, 24*time.Hour, 0); err != nil || ran {
		t.Fatalf("second MaybeGC within interval: ran=%v err=%v, want throttled", ran, err)
	}
	if !hits(t, c, survivor) {
		t.Error("throttled MaybeGC still removed an entry")
	}
}
