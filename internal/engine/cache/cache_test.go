package cache

import (
	"os"
	"path/filepath"
	"testing"
)

func testKey() Key {
	return Key{Scenario: "s", Seed: 1, Trials: 8, ShardSize: 2, Fingerprint: "abc"}
}

func TestKeyHashSensitivity(t *testing.T) {
	base := testKey()
	baseHash := base.Hash()
	if baseHash != base.Hash() {
		t.Fatal("hash not stable")
	}
	variants := map[string]Key{
		"scenario":    {Scenario: "other", Seed: 1, Trials: 8, ShardSize: 2, Fingerprint: "abc"},
		"seed":        {Scenario: "s", Seed: 2, Trials: 8, ShardSize: 2, Fingerprint: "abc"},
		"trials":      {Scenario: "s", Seed: 1, Trials: 9, ShardSize: 2, Fingerprint: "abc"},
		"shard size":  {Scenario: "s", Seed: 1, Trials: 8, ShardSize: 3, Fingerprint: "abc"},
		"fingerprint": {Scenario: "s", Seed: 1, Trials: 8, ShardSize: 2, Fingerprint: "xyz"},
	}
	for field, k := range variants {
		if k.Hash() == baseHash {
			t.Errorf("changing %s did not change the key hash", field)
		}
	}
}

type payload struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	want := payload{Name: "x", Values: []float64{1.5, -2.25, 0.1}}
	if hit, err := c.Get(k, &payload{}); err != nil || hit {
		t.Fatalf("empty cache: hit=%v err=%v", hit, err)
	}
	if err := c.Put(k, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	hit, err := c.Get(k, &got)
	if err != nil || !hit {
		t.Fatalf("after Put: hit=%v err=%v", hit, err)
	}
	if got.Name != want.Name || len(got.Values) != len(want.Values) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Errorf("value %d: %v != %v (float round trip must be exact)", i, got.Values[i], want.Values[i])
		}
	}

	// A different key misses even though an entry exists.
	other := k
	other.Seed = 99
	if hit, _ := c.Get(other, &payload{}); hit {
		t.Error("different seed hit the same entry")
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := c.Put(k, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, k.Hash()+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if hit, err := c.Get(k, &payload{}); err != nil || hit {
		t.Errorf("corrupt entry: hit=%v err=%v, want clean miss", hit, err)
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a == "" || a != b {
		t.Errorf("fingerprint unstable: %q vs %q", a, b)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("want error for empty cache dir")
	}
}
