package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testKey() Key {
	return Key{Scenario: "s", Seed: 1, Trials: 8, ShardSize: 2, Fingerprint: "abc"}
}

func TestKeyHashSensitivity(t *testing.T) {
	base := testKey()
	baseHash := base.Hash()
	if baseHash != base.Hash() {
		t.Fatal("hash not stable")
	}
	variants := map[string]Key{
		"kind":        {Kind: "figure", Scenario: "s", Seed: 1, Trials: 8, ShardSize: 2, Fingerprint: "abc"},
		"scenario":    {Scenario: "other", Seed: 1, Trials: 8, ShardSize: 2, Fingerprint: "abc"},
		"seed":        {Scenario: "s", Seed: 2, Trials: 8, ShardSize: 2, Fingerprint: "abc"},
		"trials":      {Scenario: "s", Seed: 1, Trials: 9, ShardSize: 2, Fingerprint: "abc"},
		"shard size":  {Scenario: "s", Seed: 1, Trials: 8, ShardSize: 3, Fingerprint: "abc"},
		"fingerprint": {Scenario: "s", Seed: 1, Trials: 8, ShardSize: 2, Fingerprint: "xyz"},
		"params":      {Scenario: "s", Seed: 1, Trials: 8, ShardSize: 2, Fingerprint: "abc", Params: `{"delta_db":6.5}`},
	}
	for field, k := range variants {
		if k.Hash() == baseHash {
			t.Errorf("changing %s did not change the key hash", field)
		}
	}
}

type payload struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	want := payload{Name: "x", Values: []float64{1.5, -2.25, 0.1}}
	if hit, err := c.Get(k, &payload{}); err != nil || hit {
		t.Fatalf("empty cache: hit=%v err=%v", hit, err)
	}
	if err := c.Put(k, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	hit, err := c.Get(k, &got)
	if err != nil || !hit {
		t.Fatalf("after Put: hit=%v err=%v", hit, err)
	}
	if got.Name != want.Name || len(got.Values) != len(want.Values) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Errorf("value %d: %v != %v (float round trip must be exact)", i, got.Values[i], want.Values[i])
		}
	}

	// A different key misses even though an entry exists.
	other := k
	other.Seed = 99
	if hit, _ := c.Get(other, &payload{}); hit {
		t.Error("different seed hit the same entry")
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := c.Put(k, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, k.Hash()+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if hit, err := c.Get(k, &payload{}); err != nil || hit {
		t.Errorf("corrupt entry: hit=%v err=%v, want clean miss", hit, err)
	}
}

// TestConcurrentWritersNeverTearEntries is the multi-process regression
// test for the O_EXCL staging path: two cache handles on one directory
// (standing in for a locd daemon and a CLI sharing a cache dir) hammer the
// same key while readers poll it. Every hit must decode into an internally
// consistent payload — a torn or interleaved entry would either fail to
// decode (Get returns an error) or break the payload's self-check.
func TestConcurrentWritersNeverTearEntries(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	writerA, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writerB, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	// A consistent payload repeats one rune; mixing bytes of two writes is
	// detectable no matter where the tear lands.
	consistent := func(p payload) bool {
		if len(p.Name) != 512 {
			return false
		}
		return strings.Count(p.Name, p.Name[:1]) == len(p.Name)
	}
	const rounds = 200
	var wg sync.WaitGroup
	for wi, c := range []*Cache{writerA, writerB} {
		wg.Add(1)
		go func(wi int, c *Cache) {
			defer wg.Done()
			fill := strings.Repeat(string(rune('a'+wi)), 512)
			for i := 0; i < rounds; i++ {
				if err := c.Put(k, payload{Name: fill}); err != nil {
					t.Errorf("writer %d: %v", wi, err)
					return
				}
			}
		}(wi, c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	reads := 0
	for {
		select {
		case <-done:
			if reads == 0 {
				t.Fatal("reader never ran while writers were active")
			}
			// One final read after both writers finished must hit cleanly.
			var p payload
			hit, err := reader.Get(k, &p)
			if err != nil || !hit || !consistent(p) {
				t.Fatalf("final read: hit=%v err=%v payload=%.16q", hit, err, p.Name)
			}
			return
		default:
			var p payload
			hit, err := reader.Get(k, &p)
			if err != nil {
				t.Fatalf("read %d observed a torn entry: %v", reads, err)
			}
			if hit && !consistent(p) {
				t.Fatalf("read %d observed interleaved writer bytes: %.32q", reads, p.Name)
			}
			reads++
		}
	}
}

func TestEntryByHash(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := c.Put(k, payload{Name: "x", Values: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	raw, ok, err := c.EntryByHash(k.Hash())
	if err != nil || !ok {
		t.Fatalf("EntryByHash: ok=%v err=%v", ok, err)
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil || e.Key != k {
		t.Fatalf("raw entry not self-describing: err=%v key=%+v", err, e.Key)
	}
	if _, ok, err := c.EntryByHash(strings.Repeat("0", 64)); err != nil || ok {
		t.Errorf("absent hash: ok=%v err=%v, want clean miss", ok, err)
	}
	for _, bad := range []string{"", "short", strings.Repeat("g", 64), "../../etc/passwd" + strings.Repeat("0", 48)} {
		if _, _, err := c.EntryByHash(bad); err == nil {
			t.Errorf("hash %q accepted, want validation error", bad)
		}
	}
}

// TestPutTempNamesAreProcessUnique: the staging files two concurrent Puts
// create must never collide, and they are cleaned up afterwards.
func TestPutTempNamesAreProcessUnique(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := testKey()
			k.Seed = int64(i)
			if err := c.Put(k, payload{Name: fmt.Sprintf("v%d", i)}); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasPrefix(de.Name(), "put-") {
			t.Errorf("leftover staging file %s", de.Name())
		}
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a == "" || a != b {
		t.Errorf("fingerprint unstable: %q vs %q", a, b)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("want error for empty cache dir")
	}
}

// putAged stores an entry under a seed-varied key and backdates its file.
func putAged(t *testing.T, c *Cache, seed int64, age time.Duration) Key {
	t.Helper()
	k := testKey()
	k.Seed = seed
	if err := c.Put(k, payload{Name: "x", Values: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(c.path(k), when, when); err != nil {
		t.Fatal(err)
	}
	return k
}

func hits(t *testing.T, c *Cache, k Key) bool {
	t.Helper()
	hit, err := c.Get(k, &payload{})
	if err != nil {
		t.Fatal(err)
	}
	return hit
}

func TestGCRemovesAgedEntries(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	old := putAged(t, c, 1, 48*time.Hour)
	fresh := putAged(t, c, 2, time.Minute)
	res, err := c.GC(24*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 2 || res.Removed != 1 {
		t.Errorf("GC = %+v, want 2 scanned 1 removed", res)
	}
	if hits(t, c, old) {
		t.Error("aged entry survived GC")
	}
	if !hits(t, c, fresh) {
		t.Error("fresh entry removed by age-bounded GC")
	}
}

func TestGCEnforcesSizeBoundOldestFirst(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	oldest := putAged(t, c, 1, 3*time.Hour)
	middle := putAged(t, c, 2, 2*time.Hour)
	newest := putAged(t, c, 3, time.Hour)
	fi, err := os.Stat(c.path(newest))
	if err != nil {
		t.Fatal(err)
	}
	// Room for roughly two same-sized entries: the oldest must go first.
	res, err := c.GC(0, 2*fi.Size())
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 || res.RemainingBytes > 2*fi.Size() {
		t.Errorf("GC = %+v, want 1 removed within %d bytes", res, 2*fi.Size())
	}
	if hits(t, c, oldest) {
		t.Error("oldest entry survived size-bounded GC")
	}
	if !hits(t, c, middle) || !hits(t, c, newest) {
		t.Error("size-bounded GC removed more than the oldest entry")
	}
}

// TestGetRefreshesAgeForGC: a hit must reset the entry's GC clock, so hot
// entries never age out while cold ones do.
func TestGetRefreshesAgeForGC(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	hot := putAged(t, c, 1, 48*time.Hour)
	cold := putAged(t, c, 2, 48*time.Hour)
	if !hits(t, c, hot) {
		t.Fatal("aged entry missed before GC")
	}
	if _, err := c.GC(24*time.Hour, 0); err != nil {
		t.Fatal(err)
	}
	if !hits(t, c, hot) {
		t.Error("recently hit entry aged out")
	}
	if hits(t, c, cold) {
		t.Error("cold entry of the same age survived")
	}
}

func TestMaybeGCThrottlesByStamp(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	putAged(t, c, 1, 48*time.Hour)
	res, ran, err := c.MaybeGC(time.Hour, 24*time.Hour, 0)
	if err != nil || !ran || res.Removed != 1 {
		t.Fatalf("first MaybeGC: ran=%v removed=%d err=%v, want a sweep removing 1", ran, res.Removed, err)
	}
	survivor := putAged(t, c, 2, 48*time.Hour)
	if _, ran, err := c.MaybeGC(time.Hour, 24*time.Hour, 0); err != nil || ran {
		t.Fatalf("second MaybeGC within interval: ran=%v err=%v, want throttled", ran, err)
	}
	if !hits(t, c, survivor) {
		t.Error("throttled MaybeGC still removed an entry")
	}
}
