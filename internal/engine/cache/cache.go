// Package cache is the engine's content-addressed on-disk result cache.
// A campaign result is stored under the SHA-256 of its Key — (scenario ID,
// seed, trials, shard size, code fingerprint) — which is exactly the set of
// inputs the engine's determinism contract says the result is a pure
// function of. Repeated suite runs therefore skip unchanged work entirely,
// and any change to the binary (the code fingerprint) or to the run
// parameters misses cleanly instead of serving stale data.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resilientloc/internal/obs"
)

// Cache telemetry: hit/miss/GC counters plus Get/Put latency histograms,
// registered on the process-wide registry (served by locd's /metrics).
var (
	obsGets      = obs.Default().Counter("cache_get_total")
	obsHits      = obs.Default().Counter("cache_hit_total")
	obsMisses    = obs.Default().Counter("cache_miss_total")
	obsPuts      = obs.Default().Counter("cache_put_total")
	obsPutErrs   = obs.Default().Counter("cache_put_errors_total")
	obsGCSweeps  = obs.Default().Counter("cache_gc_sweeps_total")
	obsGCRemoved = obs.Default().Counter("cache_gc_removed_total")
	obsGetSec    = obs.Default().Histogram("cache_get_seconds", obs.DefLatencyBuckets)
	obsPutSec    = obs.Default().Histogram("cache_put_seconds", obs.DefLatencyBuckets)
)

// Key identifies one deterministic campaign execution.
type Key struct {
	// Kind is the job registry the scenario name belongs to (spec.KindFigure
	// or spec.KindScenario). Without it, a figure and a library scenario
	// sharing a name would collide on one entry whose stored shape only one
	// of them can decode.
	Kind        string `json:"kind,omitempty"`
	Scenario    string `json:"scenario"`
	Seed        int64  `json:"seed"`
	Trials      int    `json:"trials"`
	ShardSize   int    `json:"shard_size"`
	Fingerprint string `json:"fingerprint"`

	// RangeLo/RangeHi identify a partial execution over the trial sub-range
	// [RangeLo, RangeHi) of the full Trials. Both zero (the encoding omits
	// them, keeping full-run key hashes stable) means the full run. This is
	// the sharding coordinator's coordination record: each distributed
	// sub-range is cached — and deduplicated — under its own content
	// address, while Trials still names the full job the range belongs to.
	RangeLo int `json:"range_lo,omitempty"`
	RangeHi int `json:"range_hi,omitempty"`
	// Retained marks a partial execution that carries per-trial values for
	// the campaign's Finalize step (engine.Partial.Retained). It is a key
	// ingredient because retained and unretained partials of one range
	// store different aggregates; full runs never cache retained values,
	// so the flag stays false (omitted) for them.
	Retained bool `json:"retained,omitempty"`
	// Params is the canonical encoding of the job's fully-resolved
	// operating point (params.Map.Canonical of spec.Resolved.Params), empty
	// for param-less jobs — whose key hashes therefore predate the field.
	// It is a string, not a map, because Keys must stay comparable for the
	// in-memory index; resolution has already filled defaults, so a spec
	// spelling out a default and one omitting it share the entry. Without
	// it, nearby operating points that truncate to one scenario name
	// ("ranging-noise-6db" covers every delta in [6, 7)) would collide.
	Params string `json:"params,omitempty"`
}

// Hash returns the key's content address: the hex SHA-256 of its canonical
// JSON encoding.
func (k Key) Hash() string {
	b, err := json.Marshal(k)
	if err != nil {
		// Key is a struct of strings and integers; Marshal cannot fail.
		panic(fmt.Sprintf("cache: marshal key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

var (
	fingerprintOnce sync.Once
	fingerprint     string
)

// Fingerprint returns a digest of the running executable, computed once per
// process. Any rebuild of the binary changes it, so cached results can never
// outlive the code that produced them. If the executable cannot be read the
// fingerprint is "unknown", which still caches consistently within rebuilds
// of the same path but is shared across them — the conservative failure mode
// is a possible stale hit only on platforms without os.Executable support.
func Fingerprint() string {
	fingerprintOnce.Do(func() {
		fingerprint = "unknown"
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		fingerprint = hex.EncodeToString(h.Sum(nil))[:16]
	})
	return fingerprint
}

// Cache is an on-disk store of JSON-encoded campaign results.
type Cache struct {
	dir string
}

// Open creates (if needed) and returns the cache rooted at dir.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// entry is the stored file format: the full key rides along with the value
// so entries are self-describing and hash collisions are detected instead
// of trusted.
type entry struct {
	Key   Key             `json:"key"`
	Value json.RawMessage `json:"value"`
}

func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, k.Hash()+".json")
}

// Get looks up k and, on a hit, JSON-decodes the stored value into out
// (which must be a pointer). The boolean reports whether a valid entry was
// found; a missing or unreadable entry is a miss, not an error.
func (c *Cache) Get(k Key, out any) (bool, error) {
	start := time.Now()
	hit, err := c.get(k, out)
	obsGetSec.Observe(time.Since(start).Seconds())
	obsGets.Inc()
	if hit {
		obsHits.Inc()
	} else {
		obsMisses.Inc()
	}
	return hit, err
}

func (c *Cache) get(k Key, out any) (bool, error) {
	b, err := os.ReadFile(c.path(k))
	if err != nil {
		return false, nil
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return false, nil // corrupt entry: treat as a miss
	}
	if e.Key != k {
		return false, nil // hash collision or tampering: recompute
	}
	if err := json.Unmarshal(e.Value, out); err != nil {
		return false, fmt.Errorf("cache: decode value for %s: %w", k.Scenario, err)
	}
	// Refresh the entry's mtime (best-effort) so the age- and size-bounded
	// GC evicts by last use, not creation time — a daily-hit entry must
	// never age out while cold ones do.
	now := time.Now()
	_ = os.Chtimes(c.path(k), now, now)
	return true, nil
}

// GCResult summarizes one cache sweep.
type GCResult struct {
	// Scanned is the number of entries examined.
	Scanned int
	// Removed is the number of entries deleted.
	Removed int
	// RemainingBytes is the total size of the entries kept.
	RemainingBytes int64
}

// gcStampName marks the last completed sweep; its mtime throttles MaybeGC.
const gcStampName = ".gc-stamp"

// GC sweeps the cache directory: entries older than maxAge are removed
// (maxAge <= 0 disables the age bound), and if the surviving entries still
// exceed maxBytes in total they are removed oldest-first until under the
// bound (maxBytes <= 0 disables the size bound). Entries fingerprinted by
// binaries that no longer exist have no reachable key, so age is the only
// signal that they are dead — this is the eviction path that keeps the
// directory from growing forever across rebuilds. Leftover temp files from
// interrupted Puts are removed once they are stale.
func (c *Cache) GC(maxAge time.Duration, maxBytes int64) (GCResult, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return GCResult{}, fmt.Errorf("cache: gc: %w", err)
	}
	type file struct {
		path string
		mod  time.Time
		size int64
	}
	var res GCResult
	var files []file
	now := time.Now()
	for _, de := range entries {
		name := de.Name()
		fi, err := de.Info()
		if err != nil {
			continue // raced with a concurrent removal
		}
		if strings.HasPrefix(name, "put-") {
			// An interrupted Put's temp file; give in-flight writes an hour.
			if now.Sub(fi.ModTime()) > time.Hour {
				_ = os.Remove(filepath.Join(c.dir, name))
			}
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue // the stamp file and anything foreign
		}
		files = append(files, file{path: filepath.Join(c.dir, name), mod: fi.ModTime(), size: fi.Size()})
	}
	res.Scanned = len(files)
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	var total int64
	kept := files[:0]
	for _, f := range files {
		if maxAge > 0 && now.Sub(f.mod) > maxAge {
			_ = os.Remove(f.path)
			res.Removed++
			continue
		}
		kept = append(kept, f)
		total += f.size
	}
	for i := 0; maxBytes > 0 && total > maxBytes && i < len(kept); i++ {
		_ = os.Remove(kept[i].path)
		res.Removed++
		total -= kept[i].size
	}
	res.RemainingBytes = total
	obsGCSweeps.Inc()
	obsGCRemoved.Add(int64(res.Removed))
	return res, nil
}

// MaybeGC runs GC at most once per minInterval per cache directory (tracked
// by a stamp file's mtime), so sessions can invoke it opportunistically
// without paying a directory sweep on every run. The boolean reports whether
// a sweep actually ran.
func (c *Cache) MaybeGC(minInterval, maxAge time.Duration, maxBytes int64) (GCResult, bool, error) {
	stamp := filepath.Join(c.dir, gcStampName)
	if fi, err := os.Stat(stamp); err == nil && time.Since(fi.ModTime()) < minInterval {
		return GCResult{}, false, nil
	}
	// Stamp before sweeping so concurrent sessions don't all pay the sweep.
	if err := os.WriteFile(stamp, nil, 0o644); err != nil {
		return GCResult{}, false, fmt.Errorf("cache: gc stamp: %w", err)
	}
	res, err := c.GC(maxAge, maxBytes)
	return res, true, err
}

// putSeq distinguishes concurrent temp files written by one process; the
// temp name also embeds the pid, so any number of processes sharing a cache
// directory write disjoint temp files.
var putSeq atomic.Uint64

// Put stores v under k. The entry is staged in a private temp file — opened
// with O_EXCL under a (key, pid, sequence)-unique name, so two processes
// sharing the cache directory (a locd daemon and a CLI, or several of
// either) can never interleave writes into one staging file — and then
// renamed into place, so a reader observes either the old complete entry or
// the new complete entry, never a torn one. Losing the rename race to a
// concurrent writer of the same key is harmless: both wrote the same
// deterministic value.
func (c *Cache) Put(k Key, v any) error {
	start := time.Now()
	err := c.put(k, v)
	obsPutSec.Observe(time.Since(start).Seconds())
	obsPuts.Inc()
	if err != nil {
		obsPutErrs.Inc()
	}
	return err
}

func (c *Cache) put(k Key, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cache: encode value for %s: %w", k.Scenario, err)
	}
	b, err := json.Marshal(entry{Key: k, Value: raw})
	if err != nil {
		return fmt.Errorf("cache: encode entry for %s: %w", k.Scenario, err)
	}
	hash := k.Hash()
	var tmp *os.File
	for attempt := 0; ; attempt++ {
		name := fmt.Sprintf("put-%s-%d-%d", hash[:12], os.Getpid(), putSeq.Add(1))
		tmp, err = os.OpenFile(filepath.Join(c.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			break
		}
		// A name collision means a leftover temp file from a recycled pid;
		// the next sequence number is fresh. Anything else is a real error.
		if !errors.Is(err, fs.ErrExist) || attempt >= 4 {
			return fmt.Errorf("cache: %w", err)
		}
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(k)); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// RangeEntry locates one cached partial execution of a job: the trial
// sub-range [Lo, Hi) it covers, the full trial count the partial was
// executed under (entries banked by runs at other trial counts surface
// too; see RangeEntries), and the content address it is stored under
// (fetchable via EntryByHash, locally or over locd's /v1/cache endpoint).
type RangeEntry struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Trials is the full trial count stamped on the entry's key — the N of
	// the run that banked it, not necessarily the N of the job probing now.
	// A consumer reusing a cross-N entry must revalidate and restamp its
	// geometry (engine.AdaptPartial) before merging it.
	Trials int    `json:"trials"`
	Hash   string `json:"hash"`
}

// RangeEntries scans the cache for partial-execution entries belonging to
// the job identified by base: a key with RangeLo/RangeHi zero whose other
// fields — including Retained — are what the job's partials carry. The
// base key's Trials is ignored for matching: a partial banked by a
// 1024-trial run of the same (scenario, seed, shard size, fingerprint,
// params) is a reusable prefix of a 4096-trial request, so entries of
// every trial count surface, each carrying its own Trials for the caller
// to classify (same-N crash-resume versus cross-N prefix reuse). This is
// the probe behind both the crash-resume coordinator and the prefix-reuse
// planner: enumerate what survives, greedily cover the trial space, and
// re-execute only the gaps. Entries are returned sorted by Lo ascending,
// then wider-first, the order a greedy cover wants. The scan reads every
// entry's self-describing key — the content address is one-way, so
// enumeration is the only way to discover which ranges exist — which is
// fine at the cache sizes GC maintains.
func (c *Cache) RangeEntries(base Key) ([]RangeEntry, error) {
	base.RangeLo, base.RangeHi = 0, 0
	base.Trials = 0
	files, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("cache: range scan: %w", err)
	}
	var out []RangeEntry
	for _, de := range files {
		name := de.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		hash := strings.TrimSuffix(name, ".json")
		if len(hash) != 2*sha256.Size {
			continue
		}
		b, err := os.ReadFile(filepath.Join(c.dir, name))
		if err != nil {
			continue // raced with GC
		}
		var e struct {
			Key Key `json:"key"`
		}
		if err := json.Unmarshal(b, &e); err != nil {
			continue // corrupt entry; Get would treat it as a miss too
		}
		if e.Key.RangeHi <= e.Key.RangeLo || e.Key.RangeHi > e.Key.Trials || e.Key.Hash() != hash {
			continue
		}
		k := e.Key
		k.RangeLo, k.RangeHi = 0, 0
		k.Trials = 0
		if k != base {
			continue
		}
		out = append(out, RangeEntry{Lo: e.Key.RangeLo, Hi: e.Key.RangeHi, Trials: e.Key.Trials, Hash: hash})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lo != out[j].Lo {
			return out[i].Lo < out[j].Lo
		}
		if out[i].Hi != out[j].Hi {
			return out[i].Hi > out[j].Hi
		}
		// Same interval at two trial counts: a fixed order keeps probe
		// responses deterministic; the consumer breaks the tie by policy.
		if out[i].Trials != out[j].Trials {
			return out[i].Trials < out[j].Trials
		}
		return out[i].Hash < out[j].Hash
	})
	return out, nil
}

// EntryByHash returns the raw stored entry (key and value, self-describing
// JSON) addressed by a key hash, as served over the wire by locd's
// /v1/cache endpoint. The boolean reports existence. The hash is validated
// as exactly a hex content address before touching the filesystem.
func (c *Cache) EntryByHash(hash string) ([]byte, bool, error) {
	if len(hash) != 2*sha256.Size {
		return nil, false, fmt.Errorf("cache: invalid entry hash %q", hash)
	}
	for _, r := range hash {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return nil, false, fmt.Errorf("cache: invalid entry hash %q", hash)
		}
	}
	b, err := os.ReadFile(filepath.Join(c.dir, hash+".json"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("cache: %w", err)
	}
	return b, true, nil
}
