// Package cache is the engine's content-addressed on-disk result cache.
// A campaign result is stored under the SHA-256 of its Key — (scenario ID,
// seed, trials, shard size, code fingerprint) — which is exactly the set of
// inputs the engine's determinism contract says the result is a pure
// function of. Repeated suite runs therefore skip unchanged work entirely,
// and any change to the binary (the code fingerprint) or to the run
// parameters misses cleanly instead of serving stale data.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Key identifies one deterministic campaign execution.
type Key struct {
	Scenario    string `json:"scenario"`
	Seed        int64  `json:"seed"`
	Trials      int    `json:"trials"`
	ShardSize   int    `json:"shard_size"`
	Fingerprint string `json:"fingerprint"`
}

// Hash returns the key's content address: the hex SHA-256 of its canonical
// JSON encoding.
func (k Key) Hash() string {
	b, err := json.Marshal(k)
	if err != nil {
		// Key is a struct of strings and integers; Marshal cannot fail.
		panic(fmt.Sprintf("cache: marshal key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

var (
	fingerprintOnce sync.Once
	fingerprint     string
)

// Fingerprint returns a digest of the running executable, computed once per
// process. Any rebuild of the binary changes it, so cached results can never
// outlive the code that produced them. If the executable cannot be read the
// fingerprint is "unknown", which still caches consistently within rebuilds
// of the same path but is shared across them — the conservative failure mode
// is a possible stale hit only on platforms without os.Executable support.
func Fingerprint() string {
	fingerprintOnce.Do(func() {
		fingerprint = "unknown"
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		fingerprint = hex.EncodeToString(h.Sum(nil))[:16]
	})
	return fingerprint
}

// Cache is an on-disk store of JSON-encoded campaign results.
type Cache struct {
	dir string
}

// Open creates (if needed) and returns the cache rooted at dir.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// entry is the stored file format: the full key rides along with the value
// so entries are self-describing and hash collisions are detected instead
// of trusted.
type entry struct {
	Key   Key             `json:"key"`
	Value json.RawMessage `json:"value"`
}

func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, k.Hash()+".json")
}

// Get looks up k and, on a hit, JSON-decodes the stored value into out
// (which must be a pointer). The boolean reports whether a valid entry was
// found; a missing or unreadable entry is a miss, not an error.
func (c *Cache) Get(k Key, out any) (bool, error) {
	b, err := os.ReadFile(c.path(k))
	if err != nil {
		return false, nil
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return false, nil // corrupt entry: treat as a miss
	}
	if e.Key != k {
		return false, nil // hash collision or tampering: recompute
	}
	if err := json.Unmarshal(e.Value, out); err != nil {
		return false, fmt.Errorf("cache: decode value for %s: %w", k.Scenario, err)
	}
	return true, nil
}

// Put stores v under k, writing atomically (temp file + rename) so readers
// never observe a partial entry.
func (c *Cache) Put(k Key, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cache: encode value for %s: %w", k.Scenario, err)
	}
	b, err := json.Marshal(entry{Key: k, Value: raw})
	if err != nil {
		return fmt.Errorf("cache: encode entry for %s: %w", k.Scenario, err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(k)); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}
