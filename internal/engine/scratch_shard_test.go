package engine

import (
	"fmt"
	"testing"
)

// scratchScenario exercises the shard-scoped arena machinery end to end:
// ShardInit precomputes a table shared by every trial on the shard, trials
// borrow and dirty arena buffers, and a stashed accumulator persists across
// Release. Results must not depend on how trials are sharded, and under
// -race this doubles as proof that shards share no scratch state.
func scratchScenario() Scenario {
	return Scenario{
		Name:        "test-scratch",
		Description: "shard arenas and ShardInit precomputation",
		Trials:      64,
		ShardInit: func() any {
			table := make([]float64, 32)
			for i := range table {
				table[i] = float64(i*i) / 7
			}
			return table
		},
		Run: func(t *T) error {
			table, ok := t.ShardData.([]float64)
			if !ok {
				return fmt.Errorf("trial %d: ShardData is %T, want []float64", t.Trial, t.ShardData)
			}
			buf := t.Scratch().Float64s(len(table))
			for i := range buf {
				buf[i] = table[i] + t.RNG.NormFloat64()
			}
			sum := 0.0
			for _, v := range buf {
				sum += v
			}
			t.Record("sum", sum)
			// Dirty an int buffer too so reuse across trials is exercised.
			idx := t.Scratch().Ints(8)
			for i := range idx {
				idx[i] = t.Trial + i
			}
			t.Record("tail", float64(idx[len(idx)-1]))
			t.RecordSeries("walk", buf[:8])
			return nil
		},
	}
}

// TestScratchScenarioWorkerIndependence: a scenario that leans on the arena
// and ShardInit must produce byte-identical reports at every worker count.
func TestScratchScenarioWorkerIndependence(t *testing.T) {
	s := scratchScenario()
	base := mustRun(t, Config{Workers: 1, Seed: 11, KeepTrialValues: true}, s)
	for _, workers := range []int{2, 3, 8} {
		rep := mustRun(t, Config{Workers: workers, Seed: 11, KeepTrialValues: true}, s)
		if !sameReport(base, rep) {
			t.Errorf("workers=%d: report differs from workers=1", workers)
		}
	}
}

// TestScratchScenarioShardInitPerShard verifies ShardInit ran (ShardData
// visible in every trial) without any cross-shard aliasing: each shard gets
// its own table, so a trial mutating its ShardData cannot corrupt another
// shard even when run under -race.
func TestScratchScenarioShardInitPerShard(t *testing.T) {
	s := scratchScenario()
	inner := s.Run
	s.Run = func(tt *T) error {
		if err := inner(tt); err != nil {
			return err
		}
		// Scribble on the shard table; worker independence above already
		// pinned the expected output, so this only has to be race-free.
		tt.ShardData.([]float64)[0] = float64(tt.Trial)
		return nil
	}
	mustRun(t, Config{Workers: 4, Seed: 13}, s)
}
