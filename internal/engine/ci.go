package engine

import (
	"fmt"
	"math"
)

// ciZ is the two-sided 95% normal critical value used for confidence
// half-widths. The auto-trials loop doubles the trial count per round, so
// the distinction between z and Student's t vanishes after the first
// handful of trials; a fixed z keeps the stopping rule a pure function of
// the report.
const ciZ = 1.96

// CIHalfWidth returns the 95% confidence-interval half-width of a metric's
// mean in rep: z·s/√n over the metric's streamed count and standard
// deviation. metric selects by name; "" selects the report's headline
// (first) metric. A metric observed fewer than two times has no estimable
// spread, so its half-width is +Inf — a CI-driven stopping rule then always
// continues. Unknown metric names are an error rather than +Inf, so a typo
// in a spec fails the first round instead of silently running to the trial
// cap.
func CIHalfWidth(rep *Report, metric string) (float64, error) {
	if rep == nil || len(rep.Metrics) == 0 {
		return 0, fmt.Errorf("engine: ci: report has no metrics")
	}
	m := rep.Metrics[0]
	if metric != "" {
		var ok bool
		if m, ok = rep.Metric(metric); !ok {
			return 0, fmt.Errorf("engine: ci: %s: no metric %q", rep.Scenario, metric)
		}
	}
	if m.Count < 2 {
		return math.Inf(1), nil
	}
	return ciZ * m.StdDev / math.Sqrt(float64(m.Count)), nil
}
