package engine

import (
	"fmt"
	"testing"
)

// countScenario records its trial index as a scalar and keeps a per-trial
// output value.
func countScenario(trials int) Scenario {
	return Scenario{
		Name:   "count",
		Trials: trials,
		Run: func(t *T) error {
			t.Record("trial", float64(t.Trial))
			t.Keep(t.Trial * 10)
			return nil
		},
	}
}

func TestRunCampaignFinalizes(t *testing.T) {
	r, err := NewRunner(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign[int]{
		Scenario:        countScenario(6),
		KeepTrialValues: true,
		Finalize: func(rep *Report) (int, error) {
			sum := 0
			for i, v := range rep.TrialOutputs {
				n, ok := v.(int)
				if !ok || n != i*10 {
					return 0, fmt.Errorf("trial %d output %v", i, v)
				}
				sum += n
			}
			return sum, nil
		},
	}
	got, rep, err := RunCampaign(r, c)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10 * (0 + 1 + 2 + 3 + 4 + 5); got != want {
		t.Errorf("finalized value %d, want %d", got, want)
	}
	if rep == nil || rep.Trials != 6 {
		t.Errorf("unexpected report %+v", rep)
	}
}

func TestRunCampaignRequiresFinalize(t *testing.T) {
	r, err := NewRunner(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunCampaign(r, Campaign[int]{Scenario: countScenario(2)}); err == nil {
		t.Error("want error for missing Finalize")
	}
}

func TestCampaignShardOverride(t *testing.T) {
	r, err := NewRunner(Config{Seed: 1, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign[int]{Scenario: countScenario(8), ShardSize: 1,
		Finalize: func(rep *Report) (int, error) { return 0, nil }}
	if trials, shard := CampaignConfig(r, c); trials != 8 || shard != 1 {
		t.Errorf("effective (trials, shard) = (%d, %d), want (8, 1)", trials, shard)
	}
	// Without a campaign override the runner's shard size stands.
	c.ShardSize = 0
	if _, shard := CampaignConfig(r, c); shard != 4 {
		t.Errorf("effective shard %d, want runner's 4", shard)
	}
}

func TestReportCampaignReturnsReport(t *testing.T) {
	r, err := NewRunner(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, raw, err := RunCampaign(r, ReportCampaign(countScenario(4)))
	if err != nil {
		t.Fatal(err)
	}
	if rep != raw {
		t.Error("ReportCampaign should finalize to the report itself")
	}
	if m, ok := rep.Metric("trial"); !ok || m.Count != 4 {
		t.Errorf("unexpected metric %+v", m)
	}
}

// TestKeepWithoutRetentionIsDropped pins that T.Keep is inert unless the
// run retains trial values.
func TestKeepWithoutRetentionIsDropped(t *testing.T) {
	r, err := NewRunner(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(countScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrialOutputs != nil {
		t.Errorf("TrialOutputs retained without KeepTrialValues: %v", rep.TrialOutputs)
	}
}

func TestProgressCounterReachesTotal(t *testing.T) {
	var calls []int
	r, err := NewRunner(Config{Seed: 1, Workers: 3, ShardSize: 2, Progress: func(done, total int) {
		if total != 10 {
			t.Errorf("total %d, want 10", total)
		}
		calls = append(calls, done)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(countScenario(10)); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 5 { // ceil(10/2) shards
		t.Fatalf("progress called %d times, want 5: %v", len(calls), calls)
	}
	last := 0
	for _, d := range calls {
		if d <= last {
			t.Errorf("progress not monotonic: %v", calls)
		}
		last = d
	}
	if last != 10 {
		t.Errorf("final progress %d, want 10", last)
	}
}
