// Package mat implements the small amount of dense linear algebra the
// localization library needs without external dependencies: row-major dense
// matrices, a cyclic Jacobi eigendecomposition for symmetric matrices (used
// by the classical-MDS baseline), and linear least squares via normal
// equations with Cholesky factorization (used by linearized multilateration
// seeding). Matrix sizes here are tiny — at most a few hundred rows — so
// clarity wins over blocking or SIMD tricks.
package mat

import (
	"errors"
	"fmt"
	"math"

	"resilientloc/internal/scratch"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible shapes")

// ErrSingular is returned when a factorization encounters a (near-)singular
// matrix.
var ErrSingular = errors.New("mat: singular matrix")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense creates a zero-valued r×c matrix. It panics on non-positive
// dimensions, which always indicate a programming error.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: NewDense: invalid shape %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mat: FromRows: empty input")
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("mat: FromRows: ragged row %d (%d != %d)", i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// densePool is the package's stashed workspace in a scratch arena: a bump
// cursor over reusable Dense headers whose backing arrays come from the
// arena's float64 pool. Release resets the cursor via scratch.Resetter.
type densePool struct {
	items []*Dense
	used  int
}

func (p *densePool) next() *Dense {
	if p.used < len(p.items) {
		d := p.items[p.used]
		p.used++
		return d
	}
	d := &Dense{}
	p.items = append(p.items, d)
	p.used++
	return d
}

// Reset rewinds the header cursor; the arena zeroes/reuses the float64
// backing independently.
func (p *densePool) Reset() { p.used = 0 }

// denseIn returns a zeroed r×c matrix backed by ws; a nil ws falls back to
// NewDense. Arena-backed matrices are valid only until ws's next Release.
func denseIn(ws *scratch.Arena, r, c int) *Dense {
	if ws == nil {
		return NewDense(r, c)
	}
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: denseIn: invalid shape %dx%d", r, c))
	}
	pool := ws.Stash("mat.densePool", func() any { return &densePool{} }).(*densePool)
	d := pool.next()
	d.rows, d.cols, d.data = r, c, ws.Float64s(r*c)
	return d
}

// NewDenseIn is NewDense with the matrix borrowed from ws (nil ws
// allocates): header from the package's stashed pool, backing from the
// arena's float64 pool. The matrix is valid only until ws's next Release.
func NewDenseIn(ws *scratch.Arena, r, c int) *Dense { return denseIn(ws, r, c) }

// Dims returns the (rows, cols) of m.
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// RowView returns row i as a subslice of the backing array (shared, not
// copied), giving hot loops flat access without per-element bounds checks.
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: RowView(%d) out of %dx%d", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense { return m.cloneIn(nil) }

// cloneIn is Clone with the copy's backing borrowed from ws (nil allocates).
func (m *Dense) cloneIn(ws *scratch.Arena) *Dense {
	n := denseIn(ws, m.rows, m.cols)
	copy(n.data, m.data)
	return n
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense { return m.tIn(nil) }

// tIn is T with the result borrowed from ws (nil allocates).
func (m *Dense) tIn(ws *scratch.Arena) *Dense {
	t := denseIn(ws, m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns m · b as a new matrix.
func (m *Dense) Mul(b *Dense) (*Dense, error) { return m.mulIn(nil, b) }

// mulIn is Mul with the result borrowed from ws (nil allocates).
func (m *Dense) mulIn(ws *scratch.Arena, b *Dense) (*Dense, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := denseIn(ws, m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m · x for a column vector x of length m.cols.
func (m *Dense) MulVec(x []float64) ([]float64, error) { return m.mulVecIn(nil, x) }

// mulVecIn is MulVec with the result borrowed from ws (nil allocates).
func (m *Dense) mulVecIn(ws *scratch.Arena, x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("%w: %dx%d · vec(%d)", ErrShape, m.rows, m.cols, len(x))
	}
	out := ws.Float64s(m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + b as a new matrix.
func (m *Dense) Add(b *Dense) (*Dense, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// ScaleInPlace multiplies every element of m by s.
func (m *Dense) ScaleInPlace(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsOffDiag returns the largest |m[i][j]|, i != j, for a square matrix.
func (m *Dense) MaxAbsOffDiag() float64 {
	var mx float64
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if i == j {
				continue
			}
			if a := math.Abs(m.At(i, j)); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// String implements fmt.Stringer for debugging.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf("%10.4f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
