package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDensePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for 0x3")
		}
	}()
	NewDense(0, 3)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("want error for ragged rows")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("want error for empty input")
	}
}

func TestSetAtClone(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("Set/At mismatch")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone aliases original")
	}
}

func TestIndexPanics(t *testing.T) {
	m := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("want panic for out-of-range index")
		}
	}()
	m.At(2, 0)
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims = %dx%d, want 3x2", r, c)
	}
	if tr.At(2, 1) != 6 {
		t.Errorf("T(2,1) = %v, want 6", tr.At(2, 1))
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Errorf("(%d,%d) = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewDense(3, 3)); !errors.Is(err, ErrShape) {
		t.Error("want ErrShape")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Error("want ErrShape")
	}
}

func TestAddScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{3, 4}})
	s, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 1) != 6 {
		t.Errorf("Add = %v", s)
	}
	s.ScaleInPlace(0.5)
	if s.At(0, 0) != 2 {
		t.Errorf("ScaleInPlace = %v", s)
	}
	if _, err := a.Add(NewDense(2, 2)); !errors.Is(err, ErrShape) {
		t.Error("want ErrShape")
	}
}

func TestIsSymmetric(t *testing.T) {
	sym, _ := FromRows([][]float64{{1, 2}, {2, 3}})
	if !sym.IsSymmetric(0) {
		t.Error("symmetric matrix not detected")
	}
	asym, _ := FromRows([][]float64{{1, 2}, {2.1, 3}})
	if asym.IsSymmetric(1e-6) {
		t.Error("asymmetric matrix passed")
	}
	if NewDense(2, 3).IsSymmetric(0) {
		t.Error("non-square matrix passed")
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Errorf("vals = %v, want [3 1]", vals)
	}
	if math.Abs(vecs.At(0, 0)) < 0.99 {
		t.Errorf("first eigenvector not e1-aligned: %v", vecs)
	}
}

func TestEigenSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
	a, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Errorf("vals = %v, want [3 1]", vals)
	}
	// Eigenvector direction check (sign-insensitive).
	v0 := []float64{vecs.At(0, 0), vecs.At(1, 0)}
	if math.Abs(math.Abs(v0[0])-math.Sqrt(0.5)) > 1e-9 {
		t.Errorf("v0 = %v, want ±(1,1)/√2", v0)
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(10)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// Check A·v = λ·v for each eigenpair.
		for k := 0; k < n; k++ {
			v := make([]float64, n)
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, k)
			}
			av, err := a.MulVec(v)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if !almostEq(av[i], vals[k]*v[i], 1e-8*(1+math.Abs(vals[k]))) {
					t.Fatalf("trial %d: eigenpair %d fails: Av=%v λv=%v", trial, k, av[i], vals[k]*v[i])
				}
			}
		}
		// Eigenvalues must be sorted descending.
		for k := 1; k < n; k++ {
			if vals[k] > vals[k-1]+1e-12 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
		// Eigenvectors must be orthonormal.
		for k := 0; k < n; k++ {
			for l := k; l < n; l++ {
				var dot float64
				for i := 0; i < n; i++ {
					dot += vecs.At(i, k) * vecs.At(i, l)
				}
				want := 0.0
				if k == l {
					want = 1
				}
				if !almostEq(dot, want, 1e-8) {
					t.Fatalf("vecs %d,%d dot = %v, want %v", k, l, dot, want)
				}
			}
		}
	}
}

func TestEigenSymErrors(t *testing.T) {
	if _, _, err := EigenSym(NewDense(2, 3)); err == nil {
		t.Error("want error for non-square")
	}
	asym, _ := FromRows([][]float64{{1, 5}, {0, 1}})
	if _, _, err := EigenSym(asym); err == nil {
		t.Error("want error for asymmetric")
	}
}

func TestCholeskyAndSolve(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ must reconstruct a.
	lt := l.T()
	rec, _ := l.Mul(lt)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(rec.At(i, j), a.At(i, j), 1e-10) {
				t.Errorf("LLᵀ(%d,%d) = %v, want %v", i, j, rec.At(i, j), a.At(i, j))
			}
		}
	}
	x, err := SolveCholesky(a, []float64{8, 7})
	if err != nil {
		t.Fatal(err)
	}
	// Verify a·x = b.
	b, _ := a.MulVec(x)
	if !almostEq(b[0], 8, 1e-10) || !almostEq(b[1], 7, 1e-10) {
		t.Errorf("solution check failed: %v", b)
	}
}

func TestCholeskySingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	if _, err := Cholesky(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Error("want ErrShape for non-square")
	}
}

func TestSolveCholeskyShapeError(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	if _, err := SolveCholesky(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Error("want ErrShape")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: y = 2x + 1 sampled at 4 points.
	a, _ := FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	b := []float64{1, 3, 5, 7}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-8) || !almostEq(x[1], 1, 1e-8) {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 200
	rows := make([][]float64, n)
	b := make([]float64, n)
	for i := range rows {
		x := rng.Float64() * 10
		rows[i] = []float64{x, 1}
		b[i] = 3*x - 2 + rng.NormFloat64()*0.01
	}
	a, _ := FromRows(rows)
	sol, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol[0]-3) > 0.01 || math.Abs(sol[1]+2) > 0.05 {
		t.Errorf("sol = %v, want ≈[3 -2]", sol)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	if _, err := LeastSquares(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Error("want ErrShape for underdetermined")
	}
	sq, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := LeastSquares(sq, []float64{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Error("want ErrShape for rhs mismatch")
	}
}
