package mat

import (
	"fmt"
	"math"
)

// Cholesky factors a symmetric positive-definite matrix a as L·Lᵀ and
// returns the lower-triangular factor L. It returns ErrSingular when a is
// not positive definite within floating-point tolerance.
func Cholesky(a *Dense) (*Dense, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, n, c)
	}
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("%w: pivot %d = %g", ErrSingular, i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves a·x = b for symmetric positive-definite a using the
// Cholesky factorization.
func SolveCholesky(a *Dense, b []float64) ([]float64, error) {
	n, _ := a.Dims()
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve %dx%d with rhs %d", ErrShape, n, n, len(b))
	}
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min ‖a·x - b‖₂ via the normal equations aᵀa·x = aᵀb
// with a small ridge term for conditioning. a must have at least as many
// rows as columns. For the tiny systems in this repository (2–3 unknowns)
// the normal equations are perfectly adequate.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	r, c := a.Dims()
	if len(b) != r {
		return nil, fmt.Errorf("%w: lstsq %dx%d with rhs %d", ErrShape, r, c, len(b))
	}
	if r < c {
		return nil, fmt.Errorf("%w: underdetermined system %dx%d", ErrShape, r, c)
	}
	at := a.T()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	// Ridge scaled to the matrix magnitude keeps Cholesky stable when a is
	// nearly rank-deficient (e.g. collinear anchors).
	var trace float64
	for i := 0; i < c; i++ {
		trace += ata.At(i, i)
	}
	ridge := 1e-12 * (1 + trace/float64(c))
	for i := 0; i < c; i++ {
		ata.Set(i, i, ata.At(i, i)+ridge)
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(ata, atb)
}
