package mat

import (
	"fmt"
	"math"

	"resilientloc/internal/scratch"
)

// Cholesky factors a symmetric positive-definite matrix a as L·Lᵀ and
// returns the lower-triangular factor L. It returns ErrSingular when a is
// not positive definite within floating-point tolerance.
func Cholesky(a *Dense) (*Dense, error) { return CholeskyIn(nil, a) }

// CholeskyIn is Cholesky with the factor borrowed from ws (nil ws
// allocates). The inner loops run over the flat backing arrays — same
// operations in the same order as the At/Set formulation, so the factor is
// bit-identical — with the row bases hoisted out of the k loop.
func CholeskyIn(ws *scratch.Arena, a *Dense) (*Dense, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, n, c)
	}
	l := denseIn(ws, n, n)
	ld := l.data
	ad := a.data
	for i := 0; i < n; i++ {
		li := ld[i*n : i*n+n]
		ai := ad[i*n : i*n+n]
		for j := 0; j <= i; j++ {
			lj := ld[j*n : j*n+n]
			sum := ai[j]
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("%w: pivot %d = %g", ErrSingular, i, sum)
				}
				li[i] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return l, nil
}

// SolveCholesky solves a·x = b for symmetric positive-definite a using the
// Cholesky factorization.
func SolveCholesky(a *Dense, b []float64) ([]float64, error) {
	return SolveCholeskyIn(nil, a, b)
}

// SolveCholeskyIn is SolveCholesky with the factor and both substitution
// vectors borrowed from ws (nil ws allocates). The returned solution is
// arena-owned: valid only until ws's next Release.
func SolveCholeskyIn(ws *scratch.Arena, a *Dense, b []float64) ([]float64, error) {
	n, _ := a.Dims()
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve %dx%d with rhs %d", ErrShape, n, n, len(b))
	}
	l, err := CholeskyIn(ws, a)
	if err != nil {
		return nil, err
	}
	ld := l.data
	// Forward substitution: L·y = b.
	y := ws.Float64s(n)
	for i := 0; i < n; i++ {
		li := ld[i*n : i*n+n]
		s := b[i]
		for k := 0; k < i; k++ {
			s -= li[k] * y[k]
		}
		y[i] = s / li[i]
	}
	// Back substitution: Lᵀ·x = y. The factor is read down column i, a
	// stride-n walk over the flat array.
	x := ws.Float64s(n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= ld[k*n+i] * x[k]
		}
		x[i] = s / ld[i*n+i]
	}
	return x, nil
}

// LeastSquares solves min ‖a·x - b‖₂ via the normal equations aᵀa·x = aᵀb
// with a small ridge term for conditioning. a must have at least as many
// rows as columns. For the tiny systems in this repository (2–3 unknowns)
// the normal equations are perfectly adequate.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	return LeastSquaresIn(nil, a, b)
}

// LeastSquaresIn is LeastSquares with every intermediate (aᵀ, aᵀa, aᵀb, the
// Cholesky factor, and the solution) borrowed from ws (nil ws allocates).
// The returned solution is arena-owned: valid only until ws's next Release.
func LeastSquaresIn(ws *scratch.Arena, a *Dense, b []float64) ([]float64, error) {
	r, c := a.Dims()
	if len(b) != r {
		return nil, fmt.Errorf("%w: lstsq %dx%d with rhs %d", ErrShape, r, c, len(b))
	}
	if r < c {
		return nil, fmt.Errorf("%w: underdetermined system %dx%d", ErrShape, r, c)
	}
	at := a.tIn(ws)
	ata, err := at.mulIn(ws, a)
	if err != nil {
		return nil, err
	}
	// Ridge scaled to the matrix magnitude keeps Cholesky stable when a is
	// nearly rank-deficient (e.g. collinear anchors).
	var trace float64
	for i := 0; i < c; i++ {
		trace += ata.At(i, i)
	}
	ridge := 1e-12 * (1 + trace/float64(c))
	for i := 0; i < c; i++ {
		ata.Set(i, i, ata.At(i, i)+ridge)
	}
	atb, err := at.mulVecIn(ws, b)
	if err != nil {
		return nil, err
	}
	return SolveCholeskyIn(ws, ata, atb)
}
