package mat

import (
	"errors"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix a
// using the cyclic Jacobi method. It returns the eigenvalues in descending
// order and the matching eigenvectors as the columns of the returned matrix.
// The input is not modified.
//
// Classical MDS needs the top eigenpairs of the double-centered squared
// distance matrix; for the network sizes in the paper (≤ 60 nodes) Jacobi is
// comfortably fast and numerically robust.
func EigenSym(a *Dense) (vals []float64, vecs *Dense, err error) {
	n, c := a.Dims()
	if n != c {
		return nil, nil, errors.New("mat: EigenSym: matrix not square")
	}
	if !a.IsSymmetric(1e-9 * (1 + a.MaxAbsOffDiag())) {
		return nil, nil, errors.New("mat: EigenSym: matrix not symmetric")
	}

	w := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := w.MaxAbsOffDiag()
		if off < 1e-13*(1+diagNorm(w)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Compute the Jacobi rotation that zeroes w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				cth := 1 / math.Sqrt(1+t*t)
				sth := t * cth
				applyJacobi(w, v, p, q, cth, sth)
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })

	sortedVals := make([]float64, n)
	sortedVecs := NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

func diagNorm(m *Dense) float64 {
	n, _ := m.Dims()
	var s float64
	for i := 0; i < n; i++ {
		s += math.Abs(m.At(i, i))
	}
	return s
}

// applyJacobi applies the rotation G(p, q, θ) on both sides of w and
// accumulates it into the eigenvector matrix v.
func applyJacobi(w, v *Dense, p, q int, c, s float64) {
	n, _ := w.Dims()
	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}
