package mat

import (
	"errors"
	"math"
	"sort"

	"resilientloc/internal/scratch"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix a
// using the cyclic Jacobi method. It returns the eigenvalues in descending
// order and the matching eigenvectors as the columns of the returned matrix.
// The input is not modified.
//
// Classical MDS needs the top eigenpairs of the double-centered squared
// distance matrix; for the network sizes in the paper (≤ 60 nodes) Jacobi is
// comfortably fast and numerically robust.
func EigenSym(a *Dense) (vals []float64, vecs *Dense, err error) {
	return EigenSymIn(nil, a)
}

// EigenSymIn is EigenSym with the working copy, the accumulated rotations,
// and both sorted outputs borrowed from ws (nil ws allocates). The returned
// values and vectors are arena-owned: valid only until ws's next Release.
func EigenSymIn(ws *scratch.Arena, a *Dense) (vals []float64, vecs *Dense, err error) {
	n, c := a.Dims()
	if n != c {
		return nil, nil, errors.New("mat: EigenSym: matrix not square")
	}
	if !a.IsSymmetric(1e-9 * (1 + a.MaxAbsOffDiag())) {
		return nil, nil, errors.New("mat: EigenSym: matrix not symmetric")
	}

	w := a.cloneIn(ws)
	v := denseIn(ws, n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := w.MaxAbsOffDiag()
		if off < 1e-13*(1+diagNorm(w)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Compute the Jacobi rotation that zeroes w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				cth := 1 / math.Sqrt(1+t*t)
				sth := t * cth
				applyJacobi(w, v, p, q, cth, sth)
			}
		}
	}

	vals = ws.Float64s(n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := ws.Ints(n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })

	sortedVals := ws.Float64s(n)
	sortedVecs := denseIn(ws, n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

func diagNorm(m *Dense) float64 {
	n, _ := m.Dims()
	var s float64
	for i := 0; i < n; i++ {
		s += math.Abs(m.At(i, i))
	}
	return s
}

// applyJacobi applies the rotation G(p, q, θ) on both sides of w and
// accumulates it into the eigenvector matrix v. The loops index the flat
// backing arrays directly — column walks are stride-n, row walks are
// subslices — performing the same operations in the same order as the
// At/Set formulation.
func applyJacobi(w, v *Dense, p, q int, c, s float64) {
	n, _ := w.Dims()
	wd, vd := w.data, v.data
	for k := 0; k < n; k++ {
		kp, kq := k*n+p, k*n+q
		wkp := wd[kp]
		wkq := wd[kq]
		wd[kp] = c*wkp - s*wkq
		wd[kq] = s*wkp + c*wkq
	}
	wp := wd[p*n : p*n+n]
	wq := wd[q*n : q*n+n]
	for k := 0; k < n; k++ {
		wpk := wp[k]
		wqk := wq[k]
		wp[k] = c*wpk - s*wqk
		wq[k] = s*wpk + c*wqk
	}
	for k := 0; k < n; k++ {
		kp, kq := k*n+p, k*n+q
		vkp := vd[kp]
		vkq := vd[kq]
		vd[kp] = c*vkp - s*vkq
		vd[kq] = s*vkp + c*vkq
	}
}
