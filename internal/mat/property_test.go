package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randomSymmetric draws a random symmetric n×n matrix.
func randomSymmetric(n int, rng *rand.Rand) *Dense {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64() * 10
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// randomSPD draws a random symmetric positive-definite matrix as B·Bᵀ + εI.
func randomSPD(n int, rng *rand.Rand) *Dense {
	b := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	bt := b.T()
	spd, err := b.Mul(bt)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+0.5)
	}
	return spd
}

// Property: the trace equals the sum of eigenvalues, and the sum of squared
// entries (Frobenius norm²) equals the sum of squared eigenvalues — both
// invariants of symmetric eigendecomposition.
func TestPropertyEigenTraceAndFrobenius(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		a := randomSymmetric(n, rng)
		vals, _, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		var trace, frob, valSum, valSq float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			for j := 0; j < n; j++ {
				frob += a.At(i, j) * a.At(i, j)
			}
		}
		for _, v := range vals {
			valSum += v
			valSq += v * v
		}
		if math.Abs(trace-valSum) > 1e-7*(1+math.Abs(trace)) {
			t.Fatalf("trial %d: trace %g != Σλ %g", trial, trace, valSum)
		}
		if math.Abs(frob-valSq) > 1e-6*(1+frob) {
			t.Fatalf("trial %d: ‖A‖²_F %g != Σλ² %g", trial, frob, valSq)
		}
	}
}

// Property: SolveCholesky returns x with A·x = b for arbitrary SPD systems.
func TestPropertyCholeskySolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		a := randomSPD(n, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 5
		}
		x, err := SolveCholesky(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ax, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
				t.Fatalf("trial %d: residual %g at row %d", trial, ax[i]-b[i], i)
			}
		}
	}
}

// Property: the least-squares residual A·x − b is orthogonal to the column
// space of A (the normal-equation condition Aᵀ(A·x − b) = 0).
func TestPropertyLeastSquaresOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		rows := 3 + rng.Intn(20)
		cols := 1 + rng.Intn(3)
		if cols > rows {
			cols = rows
		}
		a := NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, rng.NormFloat64()*3)
			}
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64() * 3
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			continue // singular draw: acceptable
		}
		ax, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		resid := make([]float64, rows)
		for i := range resid {
			resid[i] = ax[i] - b[i]
		}
		atr, err := a.T().MulVec(resid)
		if err != nil {
			t.Fatal(err)
		}
		var scale float64
		for _, v := range b {
			scale += math.Abs(v)
		}
		for j, v := range atr {
			if math.Abs(v) > 1e-5*(1+scale) {
				t.Fatalf("trial %d: Aᵀr[%d] = %g, want ≈0", trial, j, v)
			}
		}
	}
}

// Property: transposition is an involution and (A·B)ᵀ = Bᵀ·Aᵀ.
func TestPropertyTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		a := NewDense(r, c)
		b := NewDense(c, k)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		for i := 0; i < c; i++ {
			for j := 0; j < k; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		att := a.T().T()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if att.At(i, j) != a.At(i, j) {
					t.Fatal("transpose not an involution")
				}
			}
		}
		ab, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		left := ab.T()
		right, err := b.T().Mul(a.T())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			for j := 0; j < r; j++ {
				if math.Abs(left.At(i, j)-right.At(i, j)) > 1e-9 {
					t.Fatalf("(AB)ᵀ != BᵀAᵀ at (%d,%d)", i, j)
				}
			}
		}
	}
}
