package mat

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/scratch"
)

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestSolveCholeskyInMatchesFresh: the arena-backed factorization and
// substitution must be bit-identical to the allocating path across random
// SPD systems, with the arena reused (dirty) between iterations.
func TestSolveCholeskyInMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	ws := scratch.New()
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(12)
		a := randomSPD(n, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		want, err := SolveCholesky(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveCholeskyIn(ws, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(want, got) {
			t.Fatalf("iter %d: arena solve differs from fresh solve", iter)
		}
		lWant, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		lGot, err := CholeskyIn(ws, a)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(lWant.data, lGot.data) {
			t.Fatalf("iter %d: arena factor differs from fresh factor", iter)
		}
		ws.Release()
	}
}

// TestLeastSquaresInMatchesFresh covers the full normal-equations chain
// (transpose, multiply, ridge, factor, substitute) on random tall systems.
func TestLeastSquaresInMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	ws := scratch.New()
	for iter := 0; iter < 50; iter++ {
		r := 3 + rng.Intn(20)
		c := 2 + rng.Intn(3)
		if c > r {
			c = r
		}
		a := NewDense(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, rng.NormFloat64()*5)
			}
		}
		b := make([]float64, r)
		for i := range b {
			b[i] = rng.NormFloat64() * 20
		}
		want, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := LeastSquaresIn(ws, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(want, got) {
			t.Fatalf("iter %d: arena least squares differs from fresh", iter)
		}
		ws.Release()
	}
}

// TestEigenSymInMatchesFresh: the Jacobi eigendecomposition with arena
// workspaces must match the allocating path bit for bit.
func TestEigenSymInMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	ws := scratch.New()
	for iter := 0; iter < 25; iter++ {
		n := 2 + rng.Intn(10)
		a := randomSPD(n, rng)
		wantVals, wantVecs, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		gotVals, gotVecs, err := EigenSymIn(ws, a)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(wantVals, gotVals) || !bitsEqual(wantVecs.data, gotVecs.data) {
			t.Fatalf("iter %d: arena eigendecomposition differs from fresh", iter)
		}
		ws.Release()
	}
}
