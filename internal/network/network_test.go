package network

import (
	"math/rand"
	"testing"

	"resilientloc/internal/radio"
)

func mustNetwork(t *testing.T, n int, edges [][2]int, link radio.LinkModel, rng *rand.Rand) *Network {
	t.Helper()
	nw, err := New(n, edges, link, rng)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := New(0, nil, radio.LinkModel{}, rng); err == nil {
		t.Error("want error for zero nodes")
	}
	if _, err := New(3, [][2]int{{0, 5}}, radio.LinkModel{}, rng); err == nil {
		t.Error("want error for out-of-range edge")
	}
	if _, err := New(3, [][2]int{{1, 1}}, radio.LinkModel{}, rng); err == nil {
		t.Error("want error for self-edge")
	}
	if _, err := New(3, nil, radio.LinkModel{LossRate: 2}, rng); err == nil {
		t.Error("want error for invalid link model")
	}
	if _, err := New(3, nil, radio.LinkModel{LossRate: 0.5}, nil); err == nil {
		t.Error("want error for nil rng with lossy links")
	}
}

func TestNeighborsDeduplicated(t *testing.T) {
	nw := mustNetwork(t, 3, [][2]int{{0, 1}, {1, 0}, {1, 2}}, radio.LinkModel{}, nil)
	nb := nw.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Errorf("Neighbors(1) = %v, want [0 2]", nb)
	}
	if got := nw.Neighbors(0); len(got) != 1 {
		t.Errorf("Neighbors(0) = %v", got)
	}
}

func TestLocalExchangeLossless(t *testing.T) {
	nw := mustNetwork(t, 3, [][2]int{{0, 1}, {1, 2}}, radio.LinkModel{}, nil)
	got := LocalExchange(nw, func(i int) int { return i * 100 })
	if got[0][1] != 100 {
		t.Errorf("node 0 heard %v from 1", got[0][1])
	}
	if got[1][0] != 0 || got[1][2] != 200 {
		t.Errorf("node 1 heard %v", got[1])
	}
	if _, ok := got[0][2]; ok {
		t.Error("non-adjacent payload delivered")
	}
	// 2 edges × 2 directions = 4 messages.
	if nw.MessagesSent() != 4 {
		t.Errorf("MessagesSent = %d, want 4", nw.MessagesSent())
	}
}

func TestLocalExchangeLossy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nw := mustNetwork(t, 2, [][2]int{{0, 1}}, radio.LinkModel{LossRate: 1}, rng)
	got := LocalExchange(nw, func(i int) int { return i })
	if len(got[0]) != 0 || len(got[1]) != 0 {
		t.Error("total-loss link delivered payloads")
	}
}

func TestFloodReachesConnectedComponent(t *testing.T) {
	// Path 0-1-2-3 plus isolated node 4.
	nw := mustNetwork(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}}, radio.LinkModel{}, nil)
	var visits []int
	reached, err := Flood(nw, 0, func(node, from int, in int) (int, bool) {
		visits = append(visits, node)
		return in + 1, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 4 {
		t.Errorf("reached %v, want 4 nodes", reached)
	}
	for _, r := range reached {
		if r == 4 {
			t.Error("flood reached isolated node")
		}
	}
	if visits[0] != 0 {
		t.Errorf("first visit %d, want root", visits[0])
	}
}

func TestFloodPayloadAccumulates(t *testing.T) {
	// Chain: payload counts hops from root.
	nw := mustNetwork(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, radio.LinkModel{}, nil)
	depth := map[int]int{}
	if _, err := Flood(nw, 0, func(node, from int, in int) (int, bool) {
		depth[node] = in
		return in + 1, true
	}); err != nil {
		t.Fatal(err)
	}
	for node, want := range map[int]int{0: 0, 1: 1, 2: 2, 3: 3} {
		if depth[node] != want {
			t.Errorf("depth[%d] = %d, want %d", node, depth[node], want)
		}
	}
}

func TestFloodStopsWhenVisitDeclines(t *testing.T) {
	nw := mustNetwork(t, 3, [][2]int{{0, 1}, {1, 2}}, radio.LinkModel{}, nil)
	reached, err := Flood(nw, 0, func(node, from int, in struct{}) (struct{}, bool) {
		return struct{}{}, node == 0 // only root forwards
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 2 { // root + node 1; node 1 refuses to forward
		t.Errorf("reached %v, want [0 1]", reached)
	}
}

func TestFloodRootOutOfRange(t *testing.T) {
	nw := mustNetwork(t, 2, [][2]int{{0, 1}}, radio.LinkModel{}, nil)
	if _, err := Flood(nw, 9, func(n, f int, in int) (int, bool) { return 0, true }); err == nil {
		t.Error("want error for bad root")
	}
}

func TestFloodLossyLinksLimitReach(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Long chain with total loss: flood must stop at the root.
	nw := mustNetwork(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, radio.LinkModel{LossRate: 1}, rng)
	reached, err := Flood(nw, 0, func(node, from int, in int) (int, bool) { return in, true })
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 1 || reached[0] != 0 {
		t.Errorf("reached %v, want only the root", reached)
	}
}

func TestFloodRedundantPathsSurviveLoss(t *testing.T) {
	// Triangle 0-1-2 with 50% loss: count how often node 2 is reached over
	// many floods — must exceed the single-path rate thanks to redundancy.
	rng := rand.New(rand.NewSource(9))
	hits := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		nw := mustNetwork(t, 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, radio.LinkModel{LossRate: 0.5}, rng)
		reached, err := Flood(nw, 0, func(node, from int, in int) (int, bool) { return in, true })
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reached {
			if r == 2 {
				hits++
			}
		}
	}
	frac := float64(hits) / trials
	// Direct path alone: 0.5. With the relay path the probability is
	// 0.5 + 0.5·0.25 = 0.625 (direct, or direct-lost then via node 1).
	if frac < 0.55 {
		t.Errorf("redundant-path delivery %.3f, want > 0.55", frac)
	}
}
