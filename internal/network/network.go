// Package network provides the in-memory message-passing substrate for the
// distributed localization algorithm (paper Section 4.3): a static topology
// derived from the ranging graph, lossy links, and the one round of flooding
// the alignment step requires ("This algorithm requires two local data
// exchanges per node and one round of flooding").
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"resilientloc/internal/radio"
)

// Network is a synchronous message-passing simulation over a fixed
// topology.
type Network struct {
	n    int
	adj  map[int][]int
	link radio.LinkModel
	rng  *rand.Rand
	sent int
}

// New creates a network over n nodes with the given undirected edges. Edges
// referencing out-of-range nodes are rejected.
func New(n int, edges [][2]int, link radio.LinkModel, rng *rand.Rand) (*Network, error) {
	if n <= 0 {
		return nil, errors.New("network: need positive node count")
	}
	if err := link.Validate(); err != nil {
		return nil, err
	}
	if link.LossRate > 0 && rng == nil {
		return nil, errors.New("network: nil rng with lossy links")
	}
	nw := &Network{n: n, adj: make(map[int][]int), link: link, rng: rng}
	seen := make(map[[2]int]bool)
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("network: edge (%d,%d) out of range", a, b)
		}
		if a == b {
			return nil, fmt.Errorf("network: self-edge %d", a)
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		nw.adj[a] = append(nw.adj[a], b)
		nw.adj[b] = append(nw.adj[b], a)
	}
	for _, nbrs := range nw.adj {
		sort.Ints(nbrs)
	}
	return nw, nil
}

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// Neighbors returns node i's neighbors, ascending.
func (nw *Network) Neighbors(i int) []int {
	return append([]int(nil), nw.adj[i]...)
}

// MessagesSent returns the total number of point-to-point transmissions
// attempted so far (including lost ones).
func (nw *Network) MessagesSent() int { return nw.sent }

// send attempts one transmission and reports delivery.
func (nw *Network) send() bool {
	nw.sent++
	return nw.link.Delivered(nw.rng)
}

// LocalExchange models each node broadcasting one payload to all its
// neighbors (one of the "two local data exchanges per node"). It returns,
// for each node, the set of neighbor payloads that arrived:
// received[i][j] = payload of j as heard by i.
func LocalExchange[T any](nw *Network, payload func(node int) T) map[int]map[int]T {
	received := make(map[int]map[int]T, nw.n)
	for i := 0; i < nw.n; i++ {
		received[i] = make(map[int]T)
	}
	for j := 0; j < nw.n; j++ {
		p := payload(j)
		for _, i := range nw.adj[j] {
			if nw.send() {
				received[i][j] = p
			}
		}
	}
	return received
}

// Flood runs a BFS flood from root. visit is called the first time a node
// receives the flood payload, with the sending neighbor and that neighbor's
// forwarded payload; it returns the payload this node will forward, and
// whether to keep forwarding. The root's visit is called with from = -1 and
// the zero payload. Flood returns the nodes reached, ascending.
func Flood[T any](nw *Network, root int, visit func(node, from int, incoming T) (T, bool)) ([]int, error) {
	if root < 0 || root >= nw.n {
		return nil, fmt.Errorf("network: flood root %d out of range", root)
	}
	type item struct {
		node    int
		from    int
		payload T
	}
	var zero T
	reached := make(map[int]bool, nw.n)
	queue := []item{{node: root, from: -1, payload: zero}}
	var order []int
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if reached[it.node] {
			continue
		}
		out, forward := visit(it.node, it.from, it.payload)
		reached[it.node] = true
		order = append(order, it.node)
		if !forward {
			continue
		}
		for _, nb := range nw.adj[it.node] {
			if reached[nb] {
				continue
			}
			if nw.send() {
				queue = append(queue, item{node: nb, from: it.node, payload: out})
			}
		}
	}
	sort.Ints(order)
	return order, nil
}
