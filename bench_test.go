// Package resilientloc's root benchmark suite: one benchmark per paper
// figure (regenerating the figure's data end-to-end each iteration and
// reporting its headline metric), plus ablation benchmarks for the design
// choices called out in DESIGN.md.
//
// Run with:
//
//	go test -bench=. -benchmem
package resilientloc_test

import (
	"encoding/json"
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/core"
	"resilientloc/internal/deploy"
	"resilientloc/internal/engine"
	enginerun "resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/eval"
	"resilientloc/internal/experiments"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
	"resilientloc/internal/ranging"
	"resilientloc/internal/scratch"
	"resilientloc/internal/signal"
)

// benchExperiment runs one figure reproduction per iteration and reports
// the named metrics via b.ReportMetric.
func benchExperiment(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %s not found", id)
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := e.Run(1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for name, unit := range metrics {
		if v, ok := last.Get(name); ok {
			b.ReportMetric(v, unit)
		}
	}
}

func BenchmarkFig02BaselineRangingUrban(b *testing.B) {
	benchExperiment(b, "fig02", map[string]string{
		"fraction |error| > 1 m": "large_err_frac",
		"median |error|":         "median_abs_err_m",
	})
}

func BenchmarkFig04MedianFiltering(b *testing.B) {
	benchExperiment(b, "fig04", map[string]string{
		"filtered fraction |error| > 1 m": "filtered_large_frac",
	})
}

func BenchmarkFig06RefinedErrorHistogram(b *testing.B) {
	benchExperiment(b, "fig06", map[string]string{
		"fraction within ±30 cm": "core_frac",
		"median |error|":         "median_abs_err_m",
	})
}

func BenchmarkFig07BidirectionalFilter(b *testing.B) {
	benchExperiment(b, "fig07", map[string]string{
		"bidirectional fraction |error| > 1 m": "bidir_large_frac",
	})
}

func BenchmarkFig08ErrorVsDistance(b *testing.B) {
	benchExperiment(b, "fig08", map[string]string{
		"large-error fraction, farthest bin": "far_large_frac",
	})
}

func BenchmarkFig10DFTToneDetection(b *testing.B) {
	benchExperiment(b, "fig10", map[string]string{
		"noisy chirps detected (of 4)": "noisy_detected",
	})
}

func BenchmarkMaxRangeSweep(b *testing.B) {
	benchExperiment(b, "maxrange", map[string]string{
		"grass @10m (T=2)":    "grass10",
		"pavement @25m (T=2)": "pave25",
	})
}

func BenchmarkFig11IntersectionConsistency(b *testing.B) {
	benchExperiment(b, "fig11", map[string]string{
		"error with consistency check": "checked_err_m",
	})
}

func BenchmarkFig12MultilatParkingLot(b *testing.B) {
	benchExperiment(b, "fig12", map[string]string{
		"average localization error": "avg_err_m",
	})
}

func BenchmarkFig14MultilatSparseGrid(b *testing.B) {
	benchExperiment(b, "fig14", map[string]string{
		"localized fraction": "localized_frac",
		"anchors per node":   "anchors_per_node",
	})
}

func BenchmarkFig16MultilatAugmentedGrid(b *testing.B) {
	benchExperiment(b, "fig16", map[string]string{
		"localized fraction":         "localized_frac",
		"average error of localized": "avg_err_m",
	})
}

func BenchmarkFig18LSSGridConstrained(b *testing.B) {
	benchExperiment(b, "fig18", map[string]string{
		"average error": "avg_err_m",
	})
}

func BenchmarkFig19LSSGridUnconstrained(b *testing.B) {
	benchExperiment(b, "fig19", map[string]string{
		"average error": "avg_err_m",
	})
}

func BenchmarkFig20MultilatTown(b *testing.B) {
	benchExperiment(b, "fig20", map[string]string{
		"average error of localized": "avg_err_m",
	})
}

func BenchmarkFig21LSSTownConstrained(b *testing.B) {
	benchExperiment(b, "fig21", map[string]string{
		"average error": "avg_err_m",
	})
}

func BenchmarkFig22LSSTownUnconstrained(b *testing.B) {
	benchExperiment(b, "fig22", map[string]string{
		"mean single-descent error, no constraint": "unconstrained_err_m",
	})
}

func BenchmarkFig23ConvergenceCurves(b *testing.B) {
	benchExperiment(b, "fig23", map[string]string{
		"final mean E with constraint": "final_E",
	})
}

func BenchmarkFig24DistributedSparse(b *testing.B) {
	benchExperiment(b, "fig24", map[string]string{
		"average error of aligned": "avg_err_m",
	})
}

func BenchmarkFig25DistributedExtended(b *testing.B) {
	benchExperiment(b, "fig25", map[string]string{
		"average error of aligned": "avg_err_m",
	})
}

// --- Scenario-engine benchmarks ------------------------------------------

// benchScenarioRunner runs a representative library scenario (the town
// multilateration Monte Carlo) through the engine at the given worker
// count. Comparing BenchmarkRunnerSerial with BenchmarkRunnerParallel
// demonstrates the engine's near-linear speedup: both produce byte-
// identical aggregates, so the speedup is free.
func benchScenarioRunner(b *testing.B, workers int) {
	b.Helper()
	s, ok := engine.Find("multilat-town")
	if !ok {
		b.Fatal("multilat-town missing from scenario library")
	}
	r, err := engine.NewRunner(engine.Config{Workers: workers, Trials: 64, ShardSize: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var rep *engine.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = r.Run(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	if m, ok := rep.Metric("avg_error_m"); ok {
		b.ReportMetric(m.Mean, "avg_err_m")
	}
}

func BenchmarkRunnerSerial(b *testing.B)   { benchScenarioRunner(b, 1) }
func BenchmarkRunnerParallel(b *testing.B) { benchScenarioRunner(b, runtime.GOMAXPROCS(0)) }

// --- Figure-suite benchmarks ---------------------------------------------

// fastFigSuite is the subset of the figure suite cheap enough to regenerate
// end-to-end each benchmark iteration (it excludes the multi-second LSS
// grid/town minimizations but keeps every campaign shape: single-trial
// figures and the 36-trial maxrange sweep).
var fastFigSuite = []string{
	"fig02", "fig04", "fig06", "fig07", "fig08", "fig10",
	"maxrange", "fig11", "fig12", "fig14", "fig16", "fig20",
}

// benchFigSuite regenerates the fast figure subset through the engine
// campaign path at the given worker count. Serial-vs-parallel timings track
// the suite's wall-clock trajectory; output is identical at both.
func benchFigSuite(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, id := range fastFigSuite {
			e, ok := experiments.Find(id)
			if !ok {
				b.Fatalf("experiment %s not found", id)
			}
			if _, err := e.RunWorkers(1, workers); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFigSuiteSerial(b *testing.B)   { benchFigSuite(b, 1) }
func BenchmarkFigSuiteParallel(b *testing.B) { benchFigSuite(b, runtime.GOMAXPROCS(0)) }

// BenchmarkFigSuiteOverlapped runs the same fast figure subset through the
// suite scheduler with campaign-level overlap on top of trial-level
// parallelism, all campaigns drawing from the shared worker budget. The
// single-trial figures can never fill the machine alone, so overlapping
// them is where suite wall-clock drops below BenchmarkFigSuiteParallel —
// and far below BenchmarkFigSuiteSerial — while producing byte-identical
// results (pinned by the run package's suite tests).
func BenchmarkFigSuiteOverlapped(b *testing.B) {
	specs := make([]spec.JobSpec, len(fastFigSuite))
	for i, id := range fastFigSuite {
		specs[i] = spec.JobSpec{Kind: spec.KindFigure, ID: id, Seed: 1}
	}
	jobs, err := spec.ResolveAll(specs)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := enginerun.NewSession(enginerun.Options{
		Seed:          1,
		NoCache:       true,
		SuiteParallel: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range enginerun.ExecuteAll(sess, jobs, nil) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

// BenchmarkFigSuiteCacheHit measures a fully warmed suite pass through the
// unified runner: every figure is served from the on-disk result cache with
// zero trial computation, so this is the floor repeated suite runs pay.
func BenchmarkFigSuiteCacheHit(b *testing.B) {
	sess, err := enginerun.NewSession(enginerun.Options{Seed: 1, CacheDir: filepath.Join(b.TempDir(), "cache")})
	if err != nil {
		b.Fatal(err)
	}
	warm := func(requireHit bool) {
		for _, id := range fastFigSuite {
			_, info, err := enginerun.ExecuteSpec(sess, spec.JobSpec{Kind: spec.KindFigure, ID: id, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if requireHit && !info.Cached {
				b.Fatalf("%s missed the warm cache", id)
			}
		}
	}
	warm(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm(true)
	}
}

// --- Distributed-coordinator benchmarks ----------------------------------

// BenchmarkPartialRun executes one quarter-range of the 64-trial town
// multilateration scenario as a serializable partial — the unit of work a
// locd worker performs for the trial-range coordinator. Compare against a
// quarter of BenchmarkRunnerParallel's time to read the partial-execution
// overhead (piece bookkeeping plus aggregate serialization structures).
func BenchmarkPartialRun(b *testing.B) {
	s, ok := engine.Find("multilat-town")
	if !ok {
		b.Fatal("multilat-town missing from scenario library")
	}
	r, err := engine.NewRunner(engine.Config{Trials: 64, ShardSize: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunPartial(s, 16, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoordMerge measures reassembling a fully partitioned run from
// its wire-encoded partials — the coordinator's merge step, including the
// JSON decode each partial pays crossing the process boundary. The
// partition is deliberately unaligned (8 ranges over shard size 2 with odd
// boundaries) so both the state-restore and raw-replay merge paths run.
func BenchmarkCoordMerge(b *testing.B) {
	s, ok := engine.Find("multilat-town")
	if !ok {
		b.Fatal("multilat-town missing from scenario library")
	}
	r, err := engine.NewRunner(engine.Config{Trials: 64, ShardSize: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cuts := []int{0, 7, 16, 21, 32, 33, 40, 57, 64}
	var encoded [][]byte
	for i := 0; i+1 < len(cuts); i++ {
		p, err := r.RunPartial(s, cuts[i], cuts[i+1])
		if err != nil {
			b.Fatal(err)
		}
		raw, err := json.Marshal(p)
		if err != nil {
			b.Fatal(err)
		}
		encoded = append(encoded, raw)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := make([]*engine.Partial, len(encoded))
		for j, raw := range encoded {
			parts[j] = new(engine.Partial)
			if err := json.Unmarshal(raw, parts[j]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := engine.MergePartials(parts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks -------------------------------------------------

// BenchmarkAblationChirpLength compares the 8 ms chirp against the original
// 64 ms chirp (§3.6: long chirps cause late-detection overestimates).
func BenchmarkAblationChirpLength(b *testing.B) {
	for _, tc := range []struct {
		name     string
		chirpLen int
	}{
		{"8ms", 128},
		{"64ms", 1024},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var overPer100, maxOver float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(7))
				cfg := ranging.DefaultConfig(acoustics.Grass())
				cfg.Pattern.ChirpLen = tc.chirpLen
				cfg.Units.FaultProb = 0
				// A 20 m pair on grass sits right at the detection margin:
				// the early part of each chirp is usually missed, which a
				// long chirp converts into late-detection overestimates
				// (§3.6: "a long chirp has more chances of its later part
				// being detected when its early part is missed"; the paper
				// reports ~3 m maximum overestimate for 8 ms chirps).
				const d = 20.0
				dep := &deploy.Deployment{
					Name:      "pair",
					Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(d, 0)},
				}
				svc, err := ranging.NewService(cfg, dep, rng)
				if err != nil {
					b.Fatal(err)
				}
				over := 0
				maxOver = 0
				const rounds = 100
				for round := 0; round < rounds; round++ {
					if m, ok := svc.MeasurePair(0, 1); ok {
						if m-d > 1 {
							over++
						}
						if m-d > maxOver {
							maxOver = m - d
						}
					}
				}
				overPer100 = float64(over) * 100 / rounds
			}
			b.ReportMetric(overPer100, "over1m_per100")
			b.ReportMetric(maxOver, "max_over_m")
		})
	}
}

// BenchmarkAblationFilter compares median against mode statistical
// filtering on repeated noisy measurements with outliers (§3.5).
func BenchmarkAblationFilter(b *testing.B) {
	for _, tc := range []struct {
		name string
		kind measure.FilterKind
	}{
		{"median", measure.FilterMedian},
		{"mode", measure.FilterMode},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var absErr float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(11))
				raw, err := measure.NewRaw(2)
				if err != nil {
					b.Fatal(err)
				}
				const truth = 12.0
				for k := 0; k < 9; k++ {
					d := truth + rng.NormFloat64()*0.15
					if k%4 == 3 { // 25% outliers
						d = truth + 3 + rng.Float64()*5
					}
					if err := raw.Add(0, 1, d); err != nil {
						b.Fatal(err)
					}
				}
				est := raw.Filter(tc.kind, 5)[[2]int{0, 1}]
				absErr = math.Abs(est - truth)
			}
			b.ReportMetric(absErr, "abs_err_m")
		})
	}
}

// BenchmarkAblationConstraintWeight sweeps the soft-constraint weight wD on
// the sparse grid (DESIGN.md ablation; the paper uses wD=10).
func BenchmarkAblationConstraintWeight(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	dep := deploy.PaperGrid()
	dep.Positions = dep.Positions[:47]
	set, err := measure.Generate(dep, 22, 0.5, rng)
	if err != nil {
		b.Fatal(err)
	}
	measure.Sparsify(set, 247, rng)
	for _, wd := range []float64{1, 10, 100} {
		b.Run(map[float64]string{1: "wD=1", 10: "wD=10", 100: "wD=100"}[wd], func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultLSSConfig(9.14)
				cfg.WD = wd
				cfg.SeedMDSMap = false
				res, err := core.SolveLSS(set, cfg, rand.New(rand.NewSource(19)))
				if err != nil {
					b.Fatal(err)
				}
				a, err := eval.Fit(res.Positions, dep.Positions)
				if err != nil {
					b.Fatal(err)
				}
				avg = a.AvgError
			}
			b.ReportMetric(avg, "avg_err_m")
		})
	}
}

// BenchmarkAblationSeeding compares random-only against MDS-MAP-seeded LSS
// (this library's robustness improvement over the paper).
func BenchmarkAblationSeeding(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	dep := deploy.PaperGrid()
	set, err := measure.Generate(dep, 15, 0.33, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		seed bool
	}{
		{"random-only", false},
		{"mdsmap-seeded", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultLSSConfig(9)
				cfg.SeedMDSMap = tc.seed
				res, err := core.SolveLSS(set, cfg, rand.New(rand.NewSource(29)))
				if err != nil {
					b.Fatal(err)
				}
				a, err := eval.Fit(res.Positions, dep.Positions)
				if err != nil {
					b.Fatal(err)
				}
				avg = a.AvgError
			}
			b.ReportMetric(avg, "avg_err_m")
		})
	}
}

// BenchmarkTrialDetect measures one fig10-style software-detector trial —
// synthesizing a noisy multi-chirp waveform and running the sliding-DFT
// detector over it — exactly as the engine's trial hot path executes it.
// allocs/op here is the steady-state per-trial allocation count the scratch
// arena is meant to hold at zero.
func BenchmarkTrialDetect(b *testing.B) {
	cfg := signal.DefaultSynth()
	cfg.NoiseStd = 700
	det := signal.DefaultDFTDetector()
	rng := rand.New(rand.NewSource(41))
	tmpl, err := cfg.Template()
	if err != nil {
		b.Fatal(err)
	}
	ws := scratch.New()
	trial := func() {
		wave := ws.Float64s(cfg.TotalLen())
		if err := cfg.GenerateInto(wave, tmpl, rng); err != nil {
			b.Fatal(err)
		}
		if hits := det.DetectIn(ws, wave); len(hits) > cfg.Chirps*4 {
			b.Fatalf("implausible hit count %d", len(hits))
		}
		ws.Release()
	}
	trial() // warm the arena so allocs/op reports the steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trial()
	}
}

// BenchmarkTrialLSS measures one constrained LSS town solve at a reduced
// restart/iteration budget (microbenchmark scale for CI; the full budget is
// covered by the figure benchmarks above).
func BenchmarkTrialLSS(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	dep := deploy.Town(rng)
	set, err := measure.Generate(dep, 22, measure.GaussianNoise, rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultLSSConfig(9)
	cfg.Restarts = 2
	cfg.MaxIters = 800
	ws := scratch.New()
	trial := func() {
		if _, err := core.SolveLSSIn(ws, set, cfg, rand.New(rand.NewSource(47))); err != nil {
			b.Fatal(err)
		}
		ws.Release()
	}
	trial() // warm the arena so allocs/op reports the steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trial()
	}
}

// BenchmarkTrialMultilateration measures one multilat-town trial's solve:
// anchor-based multilateration with the consistency check on, over a random
// town deployment.
func BenchmarkTrialMultilateration(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	dep := deploy.Town(rng)
	set, err := measure.Generate(dep, 22, measure.GaussianNoise, rng)
	if err != nil {
		b.Fatal(err)
	}
	anchors := make(map[int]geom.Point, len(dep.Anchors))
	for _, a := range dep.Anchors {
		anchors[a] = dep.Positions[a]
	}
	ws := scratch.New()
	trial := func() {
		if _, err := core.SolveMultilaterationIn(ws, set, anchors, core.DefaultMultilatConfig()); err != nil {
			b.Fatal(err)
		}
		ws.Release()
	}
	trial() // warm the arena so allocs/op reports the steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trial()
	}
}

// BenchmarkLSSSolverScaling measures raw solver cost versus network size on
// complete noisy graphs (library performance, not a paper figure).
func BenchmarkLSSSolverScaling(b *testing.B) {
	for _, n := range []int{16, 36, 64} {
		b.Run(map[int]string{16: "n=16", 36: "n=36", 64: "n=64"}[n], func(b *testing.B) {
			rng := rand.New(rand.NewSource(31))
			side := int(math.Sqrt(float64(n)))
			dep, err := deploy.OffsetGrid(side, side, 9, 10)
			if err != nil {
				b.Fatal(err)
			}
			set, err := measure.Generate(dep, 1000, 0.33, rng)
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.DefaultLSSConfig(0)
			cfg.Restarts = 2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveLSS(set, cfg, rand.New(rand.NewSource(37))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
