module resilientloc

go 1.24
